#include "ndp/ndp_client.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <optional>

#include "common/error.h"
#include "contour/contour_filter.h"
#include "io/vnd_format.h"
#include "obs/context.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "rpc/trace_wire.h"

namespace vizndp::ndp {

using msgpack::Array;
using msgpack::Value;

NdpClient::NdpClient(std::shared_ptr<rpc::Client> client, std::string bucket,
                     const NdpClientOptions& options)
    : client_(std::move(client)),
      bucket_(std::move(bucket)),
      options_(options) {
  if (options_.retry.enabled()) {
    client_->SetRetryPolicy(options_.retry);
  }
}

contour::PolyData NdpFetcher::Contour(const std::string& key,
                                      const std::string& array,
                                      const std::vector<double>& isovalues,
                                      NdpLoadStats* stats) {
  grid::UniformGeometry geometry;
  const contour::SparseField field =
      FetchSparseField(key, array, isovalues, &geometry, stats);
  return field.Contour(geometry, isovalues);
}

PartialFetch NdpClient::FetchPartial(const std::string& key,
                                     const std::string& array,
                                     const std::vector<double>& isovalues,
                                     const std::vector<std::int64_t>* bricks) {
  Array isos;
  for (const double v : isovalues) isos.emplace_back(v);
  Array params{Value(bucket_), Value(key), Value(array),
               Value(std::move(isos)),
               Value(static_cast<std::uint64_t>(encoding_))};
  if (bricks != nullptr) {
    params.push_back(BrickRestrictionToValue(*bricks));
  }
  Value reply = client_->Call(kRpcNdpSelect, std::move(params), CallOpts());

  PartialFetch out;
  const auto& dims_v = reply.At("dims").As<Array>();
  out.dims = grid::Dims{dims_v.at(0).AsInt(), dims_v.at(1).AsInt(),
                        dims_v.at(2).AsInt()};
  const auto& o = reply.At("origin").As<Array>();
  const auto& s = reply.At("spacing").As<Array>();
  out.geometry.origin = {o.at(0).AsDouble(), o.at(1).AsDouble(),
                         o.at(2).AsDouble()};
  out.geometry.spacing = {s.at(0).AsDouble(), s.at(1).AsDouble(),
                          s.at(2).AsDouble()};
  out.dtype = grid::DataTypeFromName(reply.At("dtype").As<std::string>());
  const Bytes& payload = reply.At("payload").As<Bytes>();

  obs::Span decode_span("ndp.decode");
  out.selection = DecodeSelection(payload, out.dims);
  decode_span.End();

  out.stored_bytes = reply.At("stored_bytes").AsUint();
  out.raw_bytes = reply.At("raw_bytes").AsUint();
  out.payload_bytes = payload.size();
  out.selected_points = reply.At("selected").AsUint();
  out.total_points = reply.At("total_points").AsUint();
  out.bricks_total = reply.At("bricks_total").AsInt();
  out.bricks_read = reply.At("bricks_read").AsInt();
  out.server_read_s = reply.At("read_s").AsDouble();
  out.server_select_s = reply.At("select_s").AsDouble();
  return out;
}

msgpack::Value NdpClient::StreamSelectOnce(
    const std::string& key, const std::string& array,
    const std::vector<double>& isovalues,
    const std::vector<std::int64_t>* only_bricks, StreamAccumulator& acc,
    const StreamDeliverFn& deliver) {
  Array isos;
  for (const double v : isovalues) isos.emplace_back(v);
  Array params{Value(bucket_), Value(key), Value(array),
               Value(std::move(isos)),
               Value(static_cast<std::uint64_t>(encoding_))};
  // The restriction slot (index 5) must be present — possibly Nil — so
  // the stream map lands at its fixed position 6.
  params.push_back(only_bricks != nullptr ? BrickRestrictionToValue(
                                                *only_bricks)
                                          : Value());
  params.push_back(StreamParamsToValue(
      StreamParams{stream_.chunk_bricks, acc.cursor}));

  StreamDecoder decoder(acc.cursor);
  rpc::Client::StreamCallOptions copts;
  copts.timeout = options_.call_timeout;
  copts.chunk_timeout = stream_.chunk_timeout;
  bool cancelled = false;
  const Value terminal = client_->CallStreaming(
      kRpcNdpSelect, std::move(params), copts,
      [&](const msgpack::Value& chunk_map) -> bool {
        obs::Span decode_span("ndp.decode");
        const std::optional<StreamChunk> data = decoder.Feed(chunk_map);
        if (!data.has_value()) {
          // Header. On a resume the stream restarts with a fresh header;
          // the original stays authoritative (its stream_bricks is the
          // full stream's size, for progress), but the grid shape must
          // agree — a replica describing different data is corruption,
          // not recovery.
          const StreamHeader& h = decoder.header();
          if (acc.got_header) {
            if (h.dims.nx != acc.header.dims.nx ||
                h.dims.ny != acc.header.dims.ny ||
                h.dims.nz != acc.header.dims.nz ||
                h.dtype != acc.header.dtype) {
              throw DecodeError("stream resume: header shape mismatch");
            }
          } else {
            acc.got_header = true;
            acc.header = h;
          }
          decode_span.End();
          acc.decode_s += decode_span.ElapsedSeconds();
          return true;
        }
        if (cancel_ && cancel_()) return false;
        const DecodedSelection sel =
            DecodeSelection(data->payload, acc.header.dims);
        decode_span.End();
        acc.decode_s += decode_span.ElapsedSeconds();
        obs::Span scatter_span("ndp.scatter");
        deliver(sel);
        scatter_span.End();
        acc.scatter_s += scatter_span.ElapsedSeconds();
        acc.cursor = data->cursor;
        acc.chunks += 1;
        acc.bricks_done += data->bricks;
        acc.shipped_points += sel.ids.size();
        acc.payload_bytes += data->payload.size();
        if (progress_) {
          progress_(StreamProgress{acc.chunks, acc.bricks_done,
                                   acc.header.stream_bricks,
                                   acc.shipped_points, acc.resumes});
        }
        return true;
      },
      &cancelled);
  if (cancelled) {
    acc.cancelled = true;
    return Value();
  }
  if (decoder.got_header()) {
    decoder.Finish();
    return terminal;
  }
  // Monolithic degradation: a pre-streaming server (or an unbricked
  // array) answered with the ordinary reply and zero chunk frames.
  // Deliver the whole payload as one pseudo-chunk — after a resume this
  // re-covers bricks already scattered, which the duplicate-invariant
  // Scatter absorbs.
  obs::Span decode_span("ndp.decode");
  const auto& dims_v = terminal.At("dims").As<Array>();
  StreamHeader h;
  h.dims = grid::Dims{dims_v.at(0).AsInt(), dims_v.at(1).AsInt(),
                      dims_v.at(2).AsInt()};
  const auto& o = terminal.At("origin").As<Array>();
  const auto& s = terminal.At("spacing").As<Array>();
  for (int i = 0; i < 3; ++i) {
    h.origin[i] = o.at(static_cast<size_t>(i)).AsDouble();
    h.spacing[i] = s.at(static_cast<size_t>(i)).AsDouble();
  }
  h.dtype = grid::DataTypeFromName(terminal.At("dtype").As<std::string>());
  h.bricks_total = terminal.At("bricks_total").AsInt();
  h.stream_bricks = terminal.At("bricks_read").AsInt();
  h.total_points =
      static_cast<std::int64_t>(terminal.At("total_points").AsUint());
  if (!acc.got_header) {
    acc.got_header = true;
    acc.header = h;
  }
  const Bytes& payload = terminal.At("payload").As<Bytes>();
  const DecodedSelection sel = DecodeSelection(payload, acc.header.dims);
  decode_span.End();
  acc.decode_s += decode_span.ElapsedSeconds();
  obs::Span scatter_span("ndp.scatter");
  deliver(sel);
  scatter_span.End();
  acc.scatter_s += scatter_span.ElapsedSeconds();
  acc.chunks += 1;
  acc.bricks_done += terminal.At("bricks_read").AsInt();
  acc.shipped_points += sel.ids.size();
  acc.payload_bytes += payload.size();
  return terminal;
}

msgpack::Value NdpClient::StreamSelect(
    const std::string& key, const std::string& array,
    const std::vector<double>& isovalues,
    const std::vector<std::int64_t>* only_bricks, StreamAccumulator& acc,
    const StreamDeliverFn& deliver) {
  for (int attempt = 0;; ++attempt) {
    try {
      return StreamSelectOnce(key, array, isovalues, only_bricks, acc,
                              deliver);
    } catch (const Error& e) {
      // Resumable: the stream died (deadline, stall, peer gone, a
      // transient I/O blip) but the cursor survived. Anything else —
      // application errors, corruption — propagates; a different data
      // copy, not a retry, is the recovery for those.
      const bool resumable = dynamic_cast<const TimeoutError*>(&e) !=
                                 nullptr ||
                             dynamic_cast<const PeerClosedError*>(&e) !=
                                 nullptr ||
                             dynamic_cast<const TransientIoError*>(&e) !=
                                 nullptr;
      if (!resumable || attempt >= stream_.max_resumes) throw;
      acc.resumes += 1;
      obs::DefaultRegistry().GetCounter("ndp_stream_resume_total")
          .Increment();
      obs::GlobalEventLog().Append(
          "ndp.stream_resume",
          "key=" + key + " cursor=" + std::to_string(acc.cursor));
      net::BackoffSleep(options_.retry, attempt + 1,
                        net::MixBits(0x73747265616Dull));
    }
  }
}

contour::SparseField NdpClient::FetchSparseFieldStreaming(
    const std::string& key, const std::string& array,
    const std::vector<double>& isovalues, grid::UniformGeometry* geometry,
    NdpLoadStats* stats) {
  obs::Span total_span("ndp.fetch");
  std::optional<contour::SparseField> field;
  StreamAccumulator acc;
  obs::Span rpc_span("ndp.partial");
  const Value terminal =
      StreamSelect(key, array, isovalues, nullptr, acc,
                   [&](const DecodedSelection& sel) {
                     if (!field.has_value()) {
                       field.emplace(acc.header.dims, acc.header.dtype);
                     }
                     field->Scatter(sel.ids, sel.values);
                   });
  rpc_span.End();
  VIZNDP_CHECK_MSG(acc.got_header,
                   "stream produced neither header nor data");
  if (!field.has_value()) {
    // Zero-chunk stream: no straddling bricks (or cancelled before any
    // data) — a legitimately empty selection.
    field.emplace(acc.header.dims, acc.header.dtype);
  }
  if (geometry != nullptr) {
    geometry->origin = {acc.header.origin[0], acc.header.origin[1],
                        acc.header.origin[2]};
    geometry->spacing = {acc.header.spacing[0], acc.header.spacing[1],
                         acc.header.spacing[2]};
  }
  if (stats != nullptr) {
    stats->trace_id = obs::CurrentTraceContext().trace_id;
    stats->streamed = true;
    stats->stream_cancelled = acc.cancelled;
    stats->stream_chunks = acc.chunks;
    stats->stream_resumes = acc.resumes;
    stats->payload_bytes = acc.payload_bytes;
    stats->reply_bytes = acc.payload_bytes + 256 * (acc.chunks + 2);
    // Deduplicated: chunk halos may ship boundary points twice.
    stats->selected_points = static_cast<std::uint64_t>(field->ValidCount());
    stats->total_points =
        static_cast<std::uint64_t>(acc.header.total_points);
    stats->bricks_total = acc.header.bricks_total;
    // Terminal summary (absent after a cancel — the stream never
    // finished, so only client-side accounting exists).
    if (terminal.Is<msgpack::Map>()) {
      stats->stored_bytes = terminal.At("stored_bytes").AsUint();
      stats->raw_bytes = terminal.At("raw_bytes").AsUint();
      stats->bricks_read = terminal.At("bricks_read").AsInt();
      stats->server_read_s = terminal.At("read_s").AsDouble();
      stats->server_select_s = terminal.At("select_s").AsDouble();
    }
    stats->client_decode_s = acc.decode_s;
    stats->client_scatter_s = acc.scatter_s;
    total_span.End();
    stats->client_s = total_span.ElapsedSeconds();
  }
  return std::move(*field);
}

contour::SparseField NdpClient::FetchSparseField(
    const std::string& key, const std::string& array,
    const std::vector<double>& isovalues, grid::UniformGeometry* geometry,
    NdpLoadStats* stats) {
  // Trace root: when someone is collecting (tracer enabled) and no outer
  // scope minted one already (NdpContourSource does, so its fallback
  // shares the trace), this fetch becomes one end-to-end distributed
  // trace. With tracing off nothing is minted and the RPC frames keep
  // the pre-tracing wire shape.
  std::optional<obs::ScopedTraceContext> root;
  if (obs::GlobalTracer().enabled() && !obs::CurrentTraceContext().valid()) {
    root.emplace(obs::TraceContext::Mint(/*sampled=*/true));
  }
  if (stream_.chunk_bricks > 0) {
    return FetchSparseFieldStreaming(key, array, isovalues, geometry, stats);
  }
  obs::Span total_span("ndp.fetch");

  obs::Span rpc_span("ndp.partial");
  PartialFetch partial = FetchPartial(key, array, isovalues, nullptr);
  rpc_span.End();
  const double decode_s = rpc_span.ElapsedSeconds();  // incl. RPC wait
  if (geometry != nullptr) *geometry = partial.geometry;

  contour::SparseField field(partial.dims, partial.dtype);
  obs::Span scatter_span("ndp.scatter");
  field.Scatter(partial.selection.ids, partial.selection.values);
  scatter_span.End();

  if (stats != nullptr) {
    stats->trace_id = obs::CurrentTraceContext().trace_id;
    stats->stored_bytes = partial.stored_bytes;
    stats->raw_bytes = partial.raw_bytes;
    stats->payload_bytes = partial.payload_bytes;
    // Approximate full frame size: payload dominates; metadata is ~200 B.
    stats->reply_bytes = partial.payload_bytes + 256;
    stats->selected_points = partial.selected_points;
    stats->total_points = partial.total_points;
    stats->bricks_total = partial.bricks_total;
    stats->bricks_read = partial.bricks_read;
    stats->server_read_s = partial.server_read_s;
    stats->server_select_s = partial.server_select_s;
    stats->client_decode_s = decode_s;
    stats->client_scatter_s = scatter_span.ElapsedSeconds();
    total_span.End();
    stats->client_s = total_span.ElapsedSeconds();
  }
  return field;
}

NdpClient::ArrayStats NdpClient::Stats(const std::string& key,
                                       const std::string& array, int bins) {
  const Value reply =
      client_->Call(kRpcNdpStats, Array{Value(bucket_), Value(key),
                                        Value(array), Value(bins)},
                    CallOpts());
  ArrayStats stats;
  stats.min = reply.At("min").AsDouble();
  stats.max = reply.At("max").AsDouble();
  stats.count = reply.At("count").AsUint();
  for (const Value& c : reply.At("histogram").As<Array>()) {
    stats.histogram.push_back(c.AsUint());
  }
  return stats;
}

NdpClient::FileInfo NdpClient::Info(const std::string& key) {
  const Value reply = client_->Call(
      kRpcNdpInfo, Array{Value(bucket_), Value(key)}, CallOpts());
  FileInfo info;
  const auto& dims_v = reply.At("dims").As<Array>();
  info.dims = grid::Dims{dims_v.at(0).AsInt(), dims_v.at(1).AsInt(),
                         dims_v.at(2).AsInt()};
  for (const Value& v : reply.At("arrays").As<Array>()) {
    FileInfo::Array a;
    a.name = v.At("name").As<std::string>();
    a.raw_size = v.At("raw_size").AsUint();
    a.stored_size = v.At("stored_size").AsUint();
    // Pre-sharding servers don't report the brick decomposition; treat
    // their arrays as monolithic (no sub-request sharding).
    if (const Value* b = v.Find("bricks")) a.brick_count = b->AsInt();
    if (const Value* e = v.Find("brick_edge")) {
      a.brick_edge = static_cast<std::int32_t>(e->AsInt());
    }
    info.arrays.push_back(std::move(a));
  }
  return info;
}

std::vector<obs::MetricSnapshot> NdpClient::ScrapeMetrics() {
  const Value reply = client_->Call(kRpcNdpMetrics, Array{}, CallOpts());
  std::vector<obs::MetricSnapshot> out;
  for (const Value& v : reply.As<Array>()) {
    obs::MetricSnapshot s;
    s.name = v.At("name").As<std::string>();
    s.kind = obs::MetricKindFromName(v.At("kind").As<std::string>());
    s.value = v.At("value").AsDouble();
    if (const Value* count = v.Find("count")) s.count = count->AsUint();
    if (const Value* bounds = v.Find("bounds")) {
      for (const Value& b : bounds->As<Array>()) {
        s.bounds.push_back(b.AsDouble());
      }
    }
    if (const Value* buckets = v.Find("buckets")) {
      for (const Value& b : buckets->As<Array>()) {
        s.buckets.push_back(b.AsUint());
      }
    }
    if (const Value* ev = v.Find("exemplar_value")) {
      s.exemplar_value = ev->AsDouble();
    }
    if (const Value* et = v.Find("exemplar_trace")) {
      s.exemplar_trace_id = et->AsUint();
    }
    if (const Value* ws = v.Find("window_s")) {
      s.window_seconds = ws->AsDouble();
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string NdpClient::ScrapeMetricsFormatted(const std::string& format) {
  const Value reply =
      client_->Call(kRpcNdpMetrics, Array{Value(format)}, CallOpts());
  return reply.As<std::string>();
}

size_t NdpClient::ScrapeTrace(std::uint64_t trace_id) {
  Array params;
  if (trace_id != 0) params.emplace_back(trace_id);
  const Value reply =
      client_->Call(kRpcNdpTrace, std::move(params), CallOpts());
  const std::vector<obs::DrainedEvent> events = rpc::EventsFromValue(reply);
  if (events.empty()) return 0;

  // The server clock is a foreign steady_clock domain. Shift its events
  // so the newest one ends at the local "now": the scrape happens right
  // after the traced work, so nesting and relative timing stay readable.
  // (Spans that arrived through a reply piggyback instead get the real
  // midpoint clock alignment — see obs/trace_merge.h.)
  std::uint64_t min_start = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_end = 0;
  for (const obs::DrainedEvent& e : events) {
    min_start = std::min(min_start, e.start_us);
    max_end = std::max(max_end, e.start_us + e.dur_us);
  }
  obs::Tracer& tracer = obs::GlobalTracer();
  const std::uint64_t span_len = max_end - min_start;
  const std::uint64_t now = tracer.NowMicros();
  const std::uint64_t base = now > span_len ? now - span_len : 0;
  for (const obs::DrainedEvent& e : events) {
    obs::Tracer::SpanIds ids;
    ids.trace_id = e.trace_id;
    ids.span_id = e.span_id;
    ids.parent_span_id = e.parent_span_id;
    tracer.Inject(e.track, e.name, base + (e.start_us - min_start), e.dur_us,
                  ids);
  }
  return events.size();
}

NdpClient::HealthReport NdpClient::Health(std::uint64_t view_epoch) {
  Array params;
  if (view_epoch != 0) params.emplace_back(view_epoch);
  const Value reply =
      client_->Call(kRpcNdpHealth, std::move(params), CallOpts());
  HealthReport report;
  report.draining = reply.At("draining").As<bool>();
  report.inflight = reply.At("inflight").AsInt();
  report.mem_in_use = reply.At("mem_in_use").AsUint();
  report.mem_limit = reply.At("mem_limit").AsUint();
  // Optional keys: absent on pre-self-healing servers.
  if (const Value* v = reply.Find("node_id")) report.node_id = v->AsUint();
  if (const Value* v = reply.Find("view_epoch")) {
    report.view_epoch = v->AsUint();
  }
  for (const Value& v : reply.At("requests").As<Array>()) {
    HealthReport::Request r;
    r.method = v.At("method").As<std::string>();
    r.trace_id = v.At("trace_id").AsUint();
    r.age_us = v.At("age_us").AsUint();
    report.requests.push_back(std::move(r));
  }
  if (const Value* v = reply.Find("wall_s")) report.wall_s = v->AsDouble();
  if (const Value* v = reply.Find("uptime_s")) {
    report.uptime_s = v->AsDouble();
  }
  if (const Value* window = reply.Find("window")) {
    report.window_present = true;
    report.window_seconds = window->At("seconds").AsDouble();
    report.window_count = window->At("count").AsUint();
    report.window_p50 = window->At("p50").AsDouble();
    report.window_p95 = window->At("p95").AsDouble();
    report.window_p99 = window->At("p99").AsDouble();
  }
  if (const Value* slo = reply.Find("slo")) {
    for (const Value& v : slo->As<Array>()) {
      HealthReport::Slo s;
      s.name = v.At("name").As<std::string>();
      s.budget_remaining = v.At("budget_remaining").AsDouble();
      s.burn_short = v.At("burn_short").AsDouble();
      s.burn_long = v.At("burn_long").AsDouble();
      s.alerting = v.At("alerting").As<bool>();
      report.slo.push_back(std::move(s));
    }
  }
  if (const Value* scrub = reply.Find("scrub")) {
    report.scrub_present = true;
    report.scrub_running = scrub->At("running").As<bool>();
    report.scrub_passes = scrub->At("passes").AsUint();
    report.scrub_bricks_checked = scrub->At("bricks_checked").AsUint();
    report.scrub_corrupt_found = scrub->At("corrupt_found").AsUint();
    report.scrub_readmitted = scrub->At("readmitted").AsUint();
    report.scrub_quarantined = scrub->At("quarantined").AsUint();
  }
  return report;
}

// Picks `k` contour values at evenly spaced quantiles of the value
// distribution (excluding the extremes, as the paper's sweep does).
std::vector<double> SuggestIsovalues(const NdpClient::ArrayStats& stats,
                                     int k) {
  std::vector<double> out;
  if (stats.count == 0 || stats.histogram.empty() || k < 1) return out;
  const double step = 1.0 / (k + 1);
  std::uint64_t seen = 0;
  size_t bin = 0;
  for (int i = 1; i <= k; ++i) {
    const auto target =
        static_cast<std::uint64_t>(step * i * static_cast<double>(stats.count));
    while (bin + 1 < stats.histogram.size() &&
           seen + stats.histogram[bin] < target) {
      seen += stats.histogram[bin];
      ++bin;
    }
    out.push_back(stats.BinLow(bin) +
                  0.5 * (stats.max - stats.min) /
                      static_cast<double>(stats.histogram.size()));
  }
  return out;
}

pipeline::DataObjectPtr NdpContourSource::Execute(
    const std::vector<pipeline::DataObjectPtr>&) {
  // Mint the trace root here rather than in FetchSparseField, so a
  // degraded execution keeps its whole story — failed NDP attempts AND
  // the baseline fallback — under one trace_id.
  std::optional<obs::ScopedTraceContext> root;
  if (obs::GlobalTracer().enabled() && !obs::CurrentTraceContext().valid()) {
    root.emplace(obs::TraceContext::Mint(/*sampled=*/true));
  }
  try {
    return std::make_shared<pipeline::DataObject>(
        client_->Contour(key_, array_, isovalues_, &stats_));
  } catch (const RpcError&) {
    // The server answered: this is an application error (bad key, bad
    // array name, exhausted busy retries) that the baseline read would
    // hit too. Don't mask it. (BusyError lands here by design: a
    // saturated server does not mean the *store* is bad.)
    throw;
  } catch (const Error& e) {
    // Timeout / peer gone / corrupt frame after the client's retries —
    // or CorruptDataError, meaning the store itself failed every
    // server-side recovery step: the smart path is unreachable, so
    // degrade to the full read (possibly against a different replica).
    if (!fallback_.has_value()) throw;
    obs::DefaultRegistry().GetCounter("ndp_fallback_total").Increment();
    obs::GlobalEventLog().Append("ndp.fallback", "key=" + key_);
    std::fprintf(stderr,
                 "[vizndp] warning: NDP path for '%s' unavailable (%s); "
                 "falling back to baseline full-array read\n",
                 key_.c_str(), e.what());
    return std::make_shared<pipeline::DataObject>(BaselineContour());
  }
}

// The traditional pipeline in miniature: fetch the whole array through
// the gateway, contour locally. Geometry matches the NDP path exactly —
// both ultimately run the same marching-cubes tables over the same
// values (tests/fault_test.cc holds this bit-identical).
contour::PolyData NdpContourSource::BaselineContour() {
  obs::Span span("ndp.fallback:" + key_);
  io::VndReader reader(fallback_->Open(key_));
  const grid::DataArray data = reader.ReadArray(array_);

  stats_ = NdpLoadStats{};
  stats_.used_fallback = true;
  stats_.trace_id = obs::CurrentTraceContext().trace_id;
  stats_.stored_bytes = reader.StoredSize(array_);
  stats_.raw_bytes = static_cast<std::uint64_t>(data.byte_size());
  stats_.total_points = static_cast<std::uint64_t>(
      reader.header().dims.PointCount());
  stats_.selected_points = stats_.total_points;  // full read: everything

  contour::ContourFilter filter(isovalues_);
  contour::PolyData poly =
      filter.Execute(reader.header().dims, reader.header().geometry, data);
  span.End();
  stats_.client_s = span.ElapsedSeconds();
  return poly;
}

}  // namespace vizndp::ndp
