// Client-side half of the split pipeline: issues the pre-filter RPC,
// reconstructs the sparse field, and runs the post-filter (sparse
// marching cubes). Produces geometry identical to the traditional
// full-read pipeline — see tests/ndp_test.cc for the proof-by-test.
#pragma once

#include <chrono>
#include <memory>
#include <optional>

#include "contour/polydata.h"
#include "contour/sparse_field.h"
#include "ndp/protocol.h"
#include "net/retry.h"
#include "obs/metrics.h"
#include "pipeline/algorithm.h"
#include "rpc/client.h"
#include "storage/file_gateway.h"

namespace vizndp::ndp {

// Fault-tolerance knobs for the NDP client path. All NDP RPCs are pure
// reads, so every call is marked idempotent and retried per `retry`.
struct NdpClientOptions {
  // Per-RPC deadline; 0 blocks forever (the pre-fault-tolerance default).
  std::chrono::milliseconds call_timeout{0};
  // TCP dial budget. Consumed by whoever dials (net::TcpOptions /
  // vizndp_tool), not by NdpClient itself, but kept here so one struct
  // configures the whole client path.
  std::chrono::milliseconds connect_timeout{0};
  // Retry schedule applied to the underlying rpc::Client at construction.
  net::RetryPolicy retry{};
};

// Streaming-fetch knobs (protocol.h stream shape). chunk_bricks == 0
// keeps the monolithic path; > 0 asks the server for per-brick-batch
// chunk frames, scattered into the sparse field as they arrive.
struct StreamOptions {
  std::int64_t chunk_bricks = 0;
  // Per-chunk progress deadline: how long the stream may sit with no
  // frame before the call fails typed (StreamStallError — distinct from
  // the overall call deadline, which still applies). 0 = no per-chunk
  // deadline.
  std::chrono::milliseconds chunk_timeout{0};
  // Mid-stream recovery budget against one node: how many times a fetch
  // re-issues the call with resume_after=<cursor> after a timeout /
  // stall / closed peer before the error propagates (and, under
  // ShardedNdpClient, the stream hops to the next replica).
  int max_resumes = 4;
};

// Live progress of one streaming fetch, delivered per chunk to
// NdpClient::SetStreamProgress (vizndp_tool's progress line).
struct StreamProgress {
  std::uint64_t chunks = 0;
  std::int64_t bricks_done = 0;
  std::int64_t stream_bricks = 0;  // from the header; 0 until it arrives
  std::uint64_t points = 0;        // shipped (incl. ghost duplicates)
  std::uint64_t resumes = 0;
};
using StreamProgressFn = std::function<void(const StreamProgress&)>;

// One logical stream's state across resume attempts and (in the
// sharded client) replica hops. The cursor is the resume token: chunks
// already scattered are never re-requested, and the order/duplicate-
// invariant SparseField::Scatter makes re-delivered ghost points
// harmless, so any mix of nodes reconstructs the same field.
struct StreamAccumulator {
  std::int64_t cursor = -1;  // last brick id scattered
  bool got_header = false;
  bool cancelled = false;  // client-initiated cancel was acknowledged
  StreamHeader header;     // first attempt's header (authoritative)
  std::uint64_t chunks = 0;
  std::uint64_t resumes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t shipped_points = 0;  // incl. ghost duplicates
  std::int64_t bricks_done = 0;
  double decode_s = 0;
  double scatter_s = 0;
};

// Per-phase accounting of one NDP data load (the paper's "data load
// time" for NDP runs = read + decompress + filter + transfer).
struct NdpLoadStats {
  std::uint64_t stored_bytes = 0;    // compressed bytes read on the server
  std::uint64_t raw_bytes = 0;       // decompressed array size
  std::uint64_t payload_bytes = 0;   // selection payload shipped to client
  std::uint64_t reply_bytes = 0;     // full RPC reply frame size
  std::uint64_t selected_points = 0;
  std::uint64_t total_points = 0;
  // Brick-indexed arrays only: how much of the array the server touched.
  std::int64_t bricks_total = 0;
  std::int64_t bricks_read = 0;
  // Client-side phase timings, populated from obs::Span measurements
  // (the same spans that feed the trace buffer when tracing is on).
  double server_read_s = 0;    // measured on the server (incl. decompress)
  double server_select_s = 0;  // measured on the server
  double client_s = 0;         // RPC round trip + decode + scatter
  double client_decode_s = 0;  // payload decode ("ndp.decode" span)
  double client_scatter_s = 0; // sparse-field scatter ("ndp.scatter" span)
  // True when the NDP path was unreachable and NdpContourSource served
  // this load through the baseline full-array read instead.
  bool used_fallback = false;
  // Streaming-fetch accounting (all zero on monolithic loads).
  bool streamed = false;
  bool stream_cancelled = false;
  std::uint64_t stream_chunks = 0;
  std::uint64_t stream_resumes = 0;
  // Distributed trace this load ran under (0 when tracing was off); the
  // key into the merged timeline and the event journal.
  std::uint64_t trace_id = 0;

  double Selectivity() const {
    return total_points == 0 ? 0.0
                             : static_cast<double>(selected_points) /
                                   static_cast<double>(total_points);
  }
};

// What NdpContourSource (and any other consumer of the split pipeline)
// actually needs from "the NDP path": a sparse field plus load stats.
// NdpClient fetches it from one storage node; cluster::ShardedNdpClient
// scatter-gathers it from many. Both produce bit-identical fields, so
// pipelines are oblivious to the cluster topology behind them.
class NdpFetcher {
 public:
  virtual ~NdpFetcher() = default;

  // Runs the pre-filter remotely and reconstructs the sparse field.
  // Grid geometry comes back in the reply. `stats` may be null.
  virtual contour::SparseField FetchSparseField(
      const std::string& key, const std::string& array,
      const std::vector<double>& isovalues, grid::UniformGeometry* geometry,
      NdpLoadStats* stats = nullptr) = 0;

  // Full NDP contour: fetch + post-filter in one call.
  contour::PolyData Contour(const std::string& key, const std::string& array,
                            const std::vector<double>& isovalues,
                            NdpLoadStats* stats = nullptr);
};

// One shard's (or the single server's) reply to a — possibly
// brick-restricted — ndp.select, decoded but not yet scattered. The
// sharded client merges several of these into one SparseField; the
// plain client scatters exactly one.
struct PartialFetch {
  grid::Dims dims;
  grid::UniformGeometry geometry;
  grid::DataType dtype = grid::DataType::Float32;
  DecodedSelection selection;
  // Server-side accounting, summed/merged into NdpLoadStats.
  std::uint64_t stored_bytes = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t selected_points = 0;
  std::uint64_t total_points = 0;
  std::int64_t bricks_total = 0;
  std::int64_t bricks_read = 0;
  double server_read_s = 0;
  double server_select_s = 0;
};

class NdpClient : public NdpFetcher {
 public:
  explicit NdpClient(std::shared_ptr<rpc::Client> client,
                     std::string bucket = "data",
                     const NdpClientOptions& options = {});

  void SetEncoding(SelectionEncoding encoding) { encoding_ = encoding; }
  SelectionEncoding encoding() const { return encoding_; }

  // Streaming mode: chunk_bricks > 0 turns FetchSparseField into a
  // chunked fetch with mid-stream recovery (see StreamSelect).
  void SetStream(const StreamOptions& options) { stream_ = options; }
  const StreamOptions& stream() const { return stream_; }

  // Per-chunk progress callback (streaming fetches only). Called on the
  // fetch thread; keep it cheap.
  void SetStreamProgress(StreamProgressFn fn) { progress_ = std::move(fn); }

  // Client-side cancellation hook: polled before each data chunk is
  // scattered; returning true sends the cancel frame and ends the fetch
  // with whatever already arrived (StreamAccumulator::cancelled set,
  // NdpLoadStats::stream_cancelled on the load).
  void SetStreamCancel(std::function<bool()> fn) { cancel_ = std::move(fn); }

  // Chunks scattered by StreamSelect are handed to this callback; the
  // accumulator's header has always arrived by the first call.
  using StreamDeliverFn = std::function<void(const DecodedSelection&)>;

  // One streaming ndp.select with mid-stream recovery against this
  // node: issues the call with the accumulator's cursor, delivers each
  // decoded data chunk, and on TimeoutError / StreamStallError /
  // PeerClosedError / TransientIoError re-issues the call with
  // resume_after=<cursor> (ndp_stream_resume_total / ndp.stream_resume
  // per attempt, up to stream().max_resumes) — chunks already delivered
  // are never refetched. Other errors, and an exhausted resume budget,
  // propagate (ShardedNdpClient then hops to the next replica with the
  // same accumulator). Returns the terminal summary map; a monolithic
  // reply (pre-streaming server, unbricked array) is delivered as one
  // pseudo-chunk and returned as-is; a client-initiated cancel returns
  // Nil with acc.cancelled set.
  msgpack::Value StreamSelect(const std::string& key,
                              const std::string& array,
                              const std::vector<double>& isovalues,
                              const std::vector<std::int64_t>* only_bricks,
                              StreamAccumulator& acc,
                              const StreamDeliverFn& deliver);

  // Runs the pre-filter remotely and reconstructs the sparse field.
  // Grid geometry comes back in the reply. `stats` may be null.
  contour::SparseField FetchSparseField(const std::string& key,
                                        const std::string& array,
                                        const std::vector<double>& isovalues,
                                        grid::UniformGeometry* geometry,
                                        NdpLoadStats* stats = nullptr) override;

  // One ndp.select round trip, optionally restricted to `only_bricks`
  // (sorted brick ids; nullptr = whole array): the scatter-gather
  // sub-request. Returns the decoded but unscattered selection.
  PartialFetch FetchPartial(const std::string& key, const std::string& array,
                            const std::vector<double>& isovalues,
                            const std::vector<std::int64_t>* only_bricks);

  // Near-data array statistics (ndp.stats): only the histogram crosses
  // the network, never the array.
  struct ArrayStats {
    double min = 0;
    double max = 0;
    std::uint64_t count = 0;
    std::vector<std::uint64_t> histogram;  // uniform bins over [min, max]

    double BinLow(size_t bin) const {
      return min + (max - min) * static_cast<double>(bin) /
                       static_cast<double>(histogram.size());
    }
  };

  ArrayStats Stats(const std::string& key, const std::string& array,
                   int bins = 64);

  // ndp.info scrape: dims plus per-array layout, including the brick
  // decomposition a sharded client partitions over (brick_count 0 =
  // monolithic blob, no sub-request sharding possible for that array).
  struct FileInfo {
    grid::Dims dims;
    struct Array {
      std::string name;
      std::uint64_t raw_size = 0;
      std::uint64_t stored_size = 0;
      std::int64_t brick_count = 0;
      std::int32_t brick_edge = 0;
    };
    std::vector<Array> arrays;

    const Array* Find(const std::string& name) const {
      for (const Array& a : arrays) {
        if (a.name == name) return &a;
      }
      return nullptr;
    }
  };
  FileInfo Info(const std::string& key);

  // Scrapes the storage node's metric registries over the ndp.metrics
  // RPC. Use obs::FindMetric to pick out individual samples.
  std::vector<obs::MetricSnapshot> ScrapeMetrics();

  // Same scrape rendered server-side ("text", "json", or "prom" —
  // Prometheus exposition), for dashboards that want bytes, not values.
  std::string ScrapeMetricsFormatted(const std::string& format);

  // Drains the storage node's span buffer over the ndp.trace RPC and
  // merges the events into the local process tracer (for two-process
  // setups; sampled requests already piggyback their own spans on the
  // reply, so this catches only material outside any traced request). A
  // nonzero `trace_id` pulls just that trace. Server timestamps live in
  // a foreign clock domain, so they are shifted to end at the local
  // "now" — good enough to read phase nesting, not a cross-node clock
  // sync (piggybacked spans get the real midpoint alignment instead).
  // Returns the event count.
  size_t ScrapeTrace(std::uint64_t trace_id = 0);

  // ndp.health scrape: what the storage node is doing right now.
  struct HealthReport {
    bool draining = false;
    std::int64_t inflight = 0;
    std::uint64_t mem_in_use = 0;
    std::uint64_t mem_limit = 0;
    // Server-incarnation identity (0 from pre-self-healing servers): a
    // changed id between two probes means the node restarted even if it
    // was never caught down.
    std::uint64_t node_id = 0;
    // Highest cluster view epoch the server has heard from any prober
    // (0 from old servers).
    std::uint64_t view_epoch = 0;
    struct Request {
      std::string method;
      std::uint64_t trace_id = 0;
      std::uint64_t age_us = 0;
    };
    std::vector<Request> requests;
    // Clock stamps (0 from pre-fleet-observability servers).
    double wall_s = 0;
    double uptime_s = 0;
    // Sliding-window latency summary of the node's pre-filter
    // (ndp_select_seconds_window); window_present stays false on old
    // servers.
    bool window_present = false;
    double window_seconds = 0;
    std::uint64_t window_count = 0;
    double window_p50 = 0;
    double window_p95 = 0;
    double window_p99 = 0;
    // Per-objective SLO state, present when the node is colocated with
    // an SloTracker (NdpServer::SetSloStatusFn).
    struct Slo {
      std::string name;
      double budget_remaining = 1.0;
      double burn_short = 0;
      double burn_long = 0;
      bool alerting = false;
    };
    std::vector<Slo> slo;
    // Scrub-and-quarantine status (absent on servers without a
    // scrubber; scrub_present stays false then).
    bool scrub_present = false;
    bool scrub_running = false;
    std::uint64_t scrub_passes = 0;
    std::uint64_t scrub_bricks_checked = 0;
    std::uint64_t scrub_corrupt_found = 0;
    std::uint64_t scrub_readmitted = 0;
    std::uint64_t scrub_quarantined = 0;
  };
  // `view_epoch` (nonzero) piggybacks the caller's cluster view epoch
  // on the probe; old servers ignore the extra param.
  HealthReport Health(std::uint64_t view_epoch = 0);

 private:
  rpc::CallOptions CallOpts() const {
    return rpc::CallOptions{options_.call_timeout, /*idempotent=*/true};
  }

  // One CallStreaming attempt feeding the accumulator from its current
  // cursor; throws on any mid-stream failure (StreamSelect resumes).
  msgpack::Value StreamSelectOnce(const std::string& key,
                                  const std::string& array,
                                  const std::vector<double>& isovalues,
                                  const std::vector<std::int64_t>* only_bricks,
                                  StreamAccumulator& acc,
                                  const StreamDeliverFn& deliver);

  contour::SparseField FetchSparseFieldStreaming(
      const std::string& key, const std::string& array,
      const std::vector<double>& isovalues, grid::UniformGeometry* geometry,
      NdpLoadStats* stats);

  std::shared_ptr<rpc::Client> client_;
  std::string bucket_;
  NdpClientOptions options_;
  SelectionEncoding encoding_ = SelectionEncoding::kRunLength;
  StreamOptions stream_;
  StreamProgressFn progress_;
  std::function<bool()> cancel_;
};

// Quantile-based contour-value suggestions from near-data statistics.
std::vector<double> SuggestIsovalues(const NdpClient::ArrayStats& stats,
                                     int k);

// Pipeline source producing the NDP contour as PolyData, so split
// pipelines compose with ordinary sinks (Fig. 10's client half).
//
// With SetFallback, the source degrades gracefully: when the NDP path is
// unreachable after the client's retries (timeout, peer gone, corrupt
// frames — anything but a server-reported application error), it reads
// the full array through the given gateway and contours it locally,
// producing geometry identical to the NDP path. Each degradation
// increments ndp_fallback_total in obs::DefaultRegistry() and sets
// NdpLoadStats::used_fallback.
class NdpContourSource final : public pipeline::Algorithm {
 public:
  // Accepts any fetcher: a single-node NdpClient or a
  // cluster::ShardedNdpClient — the pipeline shape is identical.
  NdpContourSource(std::shared_ptr<NdpFetcher> client, std::string key,
                   std::string array, std::vector<double> isovalues)
      : client_(std::move(client)),
        key_(std::move(key)),
        array_(std::move(array)),
        isovalues_(std::move(isovalues)) {}

  void SetKey(std::string key) {
    key_ = std::move(key);
    Modified();
  }
  void SetIsovalues(std::vector<double> isovalues) {
    isovalues_ = std::move(isovalues);
    Modified();
  }

  // Enables the baseline full-read fallback. The gateway's underlying
  // ObjectStore must outlive this source.
  void SetFallback(storage::FileGateway gateway) {
    fallback_.emplace(std::move(gateway));
    Modified();
  }

  const NdpLoadStats& last_stats() const { return stats_; }

  std::string Name() const override { return "NdpContourSource(" + key_ + ")"; }
  int InputPortCount() const override { return 0; }

 protected:
  pipeline::DataObjectPtr Execute(
      const std::vector<pipeline::DataObjectPtr>& inputs) override;

 private:
  contour::PolyData BaselineContour();

  std::shared_ptr<NdpFetcher> client_;
  std::string key_;
  std::string array_;
  std::vector<double> isovalues_;
  std::optional<storage::FileGateway> fallback_;
  NdpLoadStats stats_;
};

}  // namespace vizndp::ndp
