#include "ndp/catalog.h"

#include <algorithm>

#include "contour/contour_filter.h"

namespace vizndp::ndp {

void TimestepCatalog::Put(std::int64_t timestep, const grid::Dataset& dataset,
                          const compress::CodecPtr& codec) {
  io::VndWriter writer(dataset);
  writer.SetCodec(codec);
  writer.WriteToStore(gateway_.store(), gateway_.bucket(), KeyFor(timestep));
}

std::vector<std::int64_t> TimestepCatalog::Timesteps() const {
  std::vector<std::int64_t> out;
  const std::string suffix = ".vnd";
  for (const storage::ObjectInfo& info : gateway_.List(prefix_ + "ts")) {
    const std::string& key = info.key;
    if (key.size() <= prefix_.size() + 2 + suffix.size()) continue;
    if (key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits = key.substr(
        prefix_.size() + 2, key.size() - prefix_.size() - 2 - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(std::atoll(digits.c_str()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ContourMovieDriver::FrameInfo> ContourMovieDriver::RunBaseline(
    const TimestepCatalog& catalog, const FrameSink& frame_sink) const {
  std::vector<FrameInfo> frames;
  const contour::ContourFilter filter(isovalues_);
  for (const std::int64_t t : catalog.Timesteps()) {
    const io::VndReader reader = catalog.Open(t);
    const contour::PolyData poly =
        filter.Execute(reader.header().dims, reader.header().geometry,
                       reader.ReadArray(array_));
    FrameInfo info;
    info.timestep = t;
    info.triangles = poly.TriangleCount();
    if (frame_sink) frame_sink(info, poly);
    frames.push_back(std::move(info));
  }
  return frames;
}

std::vector<ContourMovieDriver::FrameInfo> ContourMovieDriver::RunNdp(
    NdpClient& client, const std::vector<std::int64_t>& timesteps,
    const FrameSink& frame_sink, const std::string& catalog_prefix) const {
  std::vector<FrameInfo> frames;
  for (const std::int64_t t : timesteps) {
    const std::string key = catalog_prefix + "ts" + std::to_string(t) + ".vnd";
    NdpLoadStats stats;
    const contour::PolyData poly =
        client.Contour(key, array_, isovalues_, &stats);
    FrameInfo info;
    info.timestep = t;
    info.triangles = poly.TriangleCount();
    info.ndp_stats = stats;
    if (frame_sink) frame_sink(info, poly);
    frames.push_back(std::move(info));
  }
  return frames;
}

}  // namespace vizndp::ndp
