#include "ndp/protocol.h"

#include <string>

#include "common/error.h"
#include "compress/checksum.h"

namespace vizndp::ndp {

const char* SelectionEncodingName(SelectionEncoding e) {
  switch (e) {
    case SelectionEncoding::kIdValue: return "id+value";
    case SelectionEncoding::kDeltaVarint: return "delta-varint";
    case SelectionEncoding::kBitmap: return "bitmap";
    case SelectionEncoding::kRunLength: return "run-length";
  }
  return "?";
}

msgpack::Value BrickRestrictionToValue(std::span<const std::int64_t> bricks) {
  msgpack::Array out;
  out.reserve(bricks.size());
  for (const std::int64_t b : bricks) out.emplace_back(b);
  return msgpack::Value(std::move(out));
}

std::vector<std::int64_t> BrickRestrictionFromValue(
    const msgpack::Value& value) {
  std::vector<std::int64_t> out;
  const auto& arr = value.As<msgpack::Array>();
  if (arr.size() > kMaxBrickRestriction) {
    throw DecodeError("brick restriction: absurd length " +
                      std::to_string(arr.size()));
  }
  out.reserve(arr.size());
  for (const msgpack::Value& v : arr) {
    if (!v.IsInteger()) throw DecodeError("brick restriction: non-integer id");
    const std::int64_t b = v.AsInt();
    if (b < 0) throw DecodeError("brick restriction: negative brick id");
    if (!out.empty() && b <= out.back()) {
      throw DecodeError("brick restriction: ids must be sorted and unique");
    }
    out.push_back(b);
  }
  return out;
}

namespace {

// Required-key lookup with a typed failure (a hostile map must never
// surface as std::bad_variant_access or a CHECK).
const msgpack::Value& StreamAt(const msgpack::Value& map, const char* key) {
  if (!map.Is<msgpack::Map>()) throw DecodeError("stream chunk: not a map");
  const msgpack::Value* v = map.Find(key);
  if (v == nullptr) {
    throw DecodeError(std::string("stream chunk: missing key '") + key + "'");
  }
  return *v;
}

std::int64_t StreamInt(const msgpack::Value& map, const char* key) {
  const msgpack::Value& v = StreamAt(map, key);
  if (!v.IsInteger()) {
    throw DecodeError(std::string("stream chunk: key '") + key +
                      "' is not an integer");
  }
  return v.AsInt();
}

void StreamTriple(const msgpack::Value& map, const char* key, double out[3]) {
  const msgpack::Value& v = StreamAt(map, key);
  const auto& arr = v.As<msgpack::Array>();
  if (arr.size() != 3) {
    throw DecodeError(std::string("stream chunk: key '") + key +
                      "' is not a 3-vector");
  }
  for (size_t i = 0; i < 3; ++i) out[i] = arr[i].AsDouble();
}

}  // namespace

msgpack::Value StreamParamsToValue(const StreamParams& params) {
  msgpack::Map out;
  out.emplace_back(msgpack::Value("chunk_bricks"),
                   msgpack::Value(params.chunk_bricks));
  out.emplace_back(msgpack::Value("resume_after"),
                   msgpack::Value(params.resume_after));
  return msgpack::Value(std::move(out));
}

std::optional<StreamParams> StreamParamsFromValue(
    const msgpack::Value& value) {
  if (value.Is<msgpack::Nil>()) return std::nullopt;
  StreamParams params;
  params.chunk_bricks = StreamInt(value, "chunk_bricks");
  params.resume_after = StreamInt(value, "resume_after");
  if (params.chunk_bricks < 1 ||
      params.chunk_bricks > static_cast<std::int64_t>(kMaxBrickRestriction)) {
    throw DecodeError("stream params: chunk_bricks out of range");
  }
  if (params.resume_after < -1) {
    throw DecodeError("stream params: resume_after below -1");
  }
  return params;
}

msgpack::Value StreamHeaderToValue(const StreamHeader& header) {
  using msgpack::Array;
  using msgpack::Value;
  msgpack::Map out;
  out.emplace_back(Value("kind"), Value(std::string("header")));
  out.emplace_back(Value("dims"),
                   Value(Array{Value(header.dims.nx), Value(header.dims.ny),
                               Value(header.dims.nz)}));
  out.emplace_back(Value("origin"),
                   Value(Array{Value(header.origin[0]), Value(header.origin[1]),
                               Value(header.origin[2])}));
  out.emplace_back(
      Value("spacing"),
      Value(Array{Value(header.spacing[0]), Value(header.spacing[1]),
                  Value(header.spacing[2])}));
  out.emplace_back(Value("dtype"),
                   Value(std::string(grid::DataTypeName(header.dtype))));
  out.emplace_back(Value("bricks_total"), Value(header.bricks_total));
  out.emplace_back(Value("stream_bricks"), Value(header.stream_bricks));
  out.emplace_back(Value("total_points"), Value(header.total_points));
  return Value(std::move(out));
}

msgpack::Value StreamChunkToValue(const StreamChunk& chunk) {
  StreamChunk copy = chunk;
  return StreamChunkToValue(std::move(copy));
}

msgpack::Value StreamChunkToValue(StreamChunk&& chunk) {
  using msgpack::Value;
  msgpack::Map out;
  out.emplace_back(Value("kind"), Value(std::string("data")));
  out.emplace_back(Value("cursor"), Value(chunk.cursor));
  out.emplace_back(Value("bricks"), Value(chunk.bricks));
  out.emplace_back(Value("selected"), Value(chunk.selected));
  out.emplace_back(Value("crc32"),
                   Value(static_cast<std::uint64_t>(
                       compress::Crc32(chunk.payload))));
  out.emplace_back(Value("payload"), Value(std::move(chunk.payload)));
  return Value(std::move(out));
}

std::optional<StreamChunk> StreamDecoder::Feed(
    const msgpack::Value& chunk_map) {
  if (finished_) {
    throw DecodeError("stream chunk after the terminal frame");
  }
  const std::string& kind = StreamAt(chunk_map, "kind").As<std::string>();
  if (kind == "header") {
    if (got_header_) throw DecodeError("duplicate stream header");
    StreamHeader h;
    const msgpack::Value& dims = StreamAt(chunk_map, "dims");
    const auto& darr = dims.As<msgpack::Array>();
    if (darr.size() != 3) throw DecodeError("stream header: bad dims");
    h.dims = grid::Dims{darr[0].AsInt(), darr[1].AsInt(), darr[2].AsInt()};
    if (h.dims.nx <= 0 || h.dims.ny <= 0 || h.dims.nz <= 0) {
      throw DecodeError("stream header: non-positive dims");
    }
    StreamTriple(chunk_map, "origin", h.origin);
    StreamTriple(chunk_map, "spacing", h.spacing);
    h.dtype = grid::DataTypeFromName(
        StreamAt(chunk_map, "dtype").As<std::string>());
    h.bricks_total = StreamInt(chunk_map, "bricks_total");
    h.stream_bricks = StreamInt(chunk_map, "stream_bricks");
    h.total_points = StreamInt(chunk_map, "total_points");
    if (h.bricks_total < 0 || h.stream_bricks < 0 ||
        h.stream_bricks > h.bricks_total) {
      throw DecodeError("stream header: inconsistent brick counts");
    }
    if (h.total_points != h.dims.PointCount()) {
      throw DecodeError("stream header: total_points does not match dims");
    }
    got_header_ = true;
    header_ = h;
    return std::nullopt;
  }
  if (kind != "data") {
    throw DecodeError("stream chunk: unknown kind '" + kind + "'");
  }
  if (!got_header_) {
    throw DecodeError("stream data chunk before the header");
  }
  StreamChunk chunk;
  chunk.cursor = StreamInt(chunk_map, "cursor");
  chunk.bricks = StreamInt(chunk_map, "bricks");
  chunk.selected = StreamInt(chunk_map, "selected");
  if (chunk.cursor <= cursor_) {
    throw DecodeError("stream cursor not strictly ascending (" +
                      std::to_string(chunk.cursor) + " after " +
                      std::to_string(cursor_) + ")");
  }
  if (chunk.cursor >= header_.bricks_total) {
    throw DecodeError("stream cursor beyond the brick count");
  }
  if (chunk.bricks < 1 || chunk.selected < 0) {
    throw DecodeError("stream chunk: bad batch counts");
  }
  const msgpack::Value& payload = StreamAt(chunk_map, "payload");
  if (!payload.Is<Bytes>()) {
    throw DecodeError("stream chunk: payload is not binary");
  }
  chunk.payload = payload.As<Bytes>();
  const auto crc = static_cast<std::uint32_t>(StreamInt(chunk_map, "crc32"));
  if (compress::Crc32(chunk.payload) != crc) {
    throw CorruptDataError("stream chunk failed its CRC-32 check (cursor " +
                           std::to_string(chunk.cursor) + ")");
  }
  cursor_ = chunk.cursor;
  return chunk;
}

void StreamDecoder::Finish() {
  if (finished_) throw DecodeError("duplicate stream terminal frame");
  if (!got_header_) throw DecodeError("stream terminal before the header");
  finished_ = true;
}

void AppendVarint(std::uint64_t value, Bytes& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<Byte>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<Byte>(value));
}

std::uint64_t ReadVarint(ByteSpan data, size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    if (pos >= data.size()) throw DecodeError("varint truncated");
    const Byte b = data[pos++];
    if (shift >= 63 && (b & 0x7F) > 1) {
      throw DecodeError("varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return value;
    shift += 7;
  }
}

Bytes EncodeSelection(const contour::Selection& selection,
                      SelectionEncoding encoding) {
  const size_t count = selection.ids.size();
  VIZNDP_CHECK(selection.values.size() == static_cast<std::int64_t>(count));
  Bytes out;
  out.push_back(static_cast<Byte>(encoding));
  out.push_back(static_cast<Byte>(selection.values.type()));
  AppendLE<std::uint64_t>(count, out);

  switch (encoding) {
    case SelectionEncoding::kIdValue:
      for (const grid::PointId id : selection.ids) {
        AppendLE<std::int64_t>(id, out);
      }
      break;
    case SelectionEncoding::kDeltaVarint: {
      grid::PointId prev = 0;
      for (const grid::PointId id : selection.ids) {
        VIZNDP_CHECK_MSG(id >= prev, "delta encoding requires sorted ids");
        AppendVarint(static_cast<std::uint64_t>(id - prev), out);
        prev = id;
      }
      break;
    }
    case SelectionEncoding::kBitmap: {
      const auto npoints = static_cast<size_t>(selection.dims.PointCount());
      AppendLE<std::uint64_t>(npoints, out);
      const size_t bitmap_at = out.size();
      out.insert(out.end(), (npoints + 7) / 8, 0);
      for (const grid::PointId id : selection.ids) {
        out[bitmap_at + static_cast<size_t>(id) / 8] |=
            static_cast<Byte>(1u << (static_cast<size_t>(id) % 8));
      }
      break;
    }
    case SelectionEncoding::kRunLength: {
      // (gap from previous run's end, run length) varint pairs.
      grid::PointId prev_end = 0;
      size_t i = 0;
      while (i < count) {
        const grid::PointId start = selection.ids[i];
        VIZNDP_CHECK_MSG(start >= prev_end,
                         "run-length encoding requires sorted unique ids");
        size_t run = 1;
        while (i + run < count &&
               selection.ids[i + run] == start + static_cast<std::int64_t>(run)) {
          ++run;
        }
        AppendVarint(static_cast<std::uint64_t>(start - prev_end), out);
        AppendVarint(run, out);
        prev_end = start + static_cast<std::int64_t>(run);
        i += run;
      }
      break;
    }
  }
  const ByteSpan raw = selection.values.raw();
  out.insert(out.end(), raw.begin(), raw.end());
  return out;
}

DecodedSelection DecodeSelection(ByteSpan payload, const grid::Dims& dims) {
  if (payload.size() < 10) throw DecodeError("selection payload too short");
  const auto encoding = static_cast<SelectionEncoding>(payload[0]);
  const auto type = static_cast<grid::DataType>(payload[1]);
  const std::uint64_t count = LoadLE<std::uint64_t>(payload.data() + 2);
  size_t pos = 10;

  // Bound before the reserve: a hostile count must get a typed rejection,
  // not a bad_alloc. No selection can mark more ids than the grid has
  // points (ids are validated against the same bound below).
  if (count > static_cast<std::uint64_t>(dims.PointCount())) {
    throw DecodeError("selection count exceeds grid point count");
  }
  DecodedSelection out;
  out.ids.reserve(count);
  switch (encoding) {
    case SelectionEncoding::kIdValue:
      if (pos + count * 8 > payload.size()) {
        throw DecodeError("id+value payload truncated");
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        out.ids.push_back(LoadLE<std::int64_t>(payload.data() + pos));
        pos += 8;
      }
      break;
    case SelectionEncoding::kDeltaVarint: {
      grid::PointId prev = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        prev += static_cast<grid::PointId>(ReadVarint(payload, pos));
        out.ids.push_back(prev);
      }
      break;
    }
    case SelectionEncoding::kBitmap: {
      if (pos + 8 > payload.size()) throw DecodeError("bitmap payload truncated");
      const std::uint64_t npoints = LoadLE<std::uint64_t>(payload.data() + pos);
      pos += 8;
      if (npoints != static_cast<std::uint64_t>(dims.PointCount())) {
        throw DecodeError("bitmap point count does not match grid");
      }
      const size_t bitmap_bytes = (npoints + 7) / 8;
      if (pos + bitmap_bytes > payload.size()) {
        throw DecodeError("bitmap payload truncated");
      }
      for (std::uint64_t id = 0; id < npoints; ++id) {
        if (payload[pos + id / 8] & (1u << (id % 8))) {
          out.ids.push_back(static_cast<grid::PointId>(id));
        }
      }
      if (out.ids.size() != count) {
        throw DecodeError("bitmap population does not match count");
      }
      pos += bitmap_bytes;
      break;
    }
    case SelectionEncoding::kRunLength: {
      grid::PointId prev_end = 0;
      while (out.ids.size() < count) {
        const auto gap = static_cast<grid::PointId>(ReadVarint(payload, pos));
        const std::uint64_t run = ReadVarint(payload, pos);
        if (run == 0 || out.ids.size() + run > count) {
          throw DecodeError("run-length selection run overruns count");
        }
        const grid::PointId start = prev_end + gap;
        for (std::uint64_t r = 0; r < run; ++r) {
          out.ids.push_back(start + static_cast<grid::PointId>(r));
        }
        prev_end = start + static_cast<grid::PointId>(run);
      }
      break;
    }
    default:
      throw DecodeError("unknown selection encoding tag");
  }

  const size_t value_bytes = count * grid::DataTypeSize(type);
  if (pos + value_bytes != payload.size()) {
    throw DecodeError("selection value block has wrong size");
  }
  out.values = grid::DataArray(
      "selection", type,
      Bytes(payload.begin() + static_cast<std::ptrdiff_t>(pos), payload.end()));
  for (const grid::PointId id : out.ids) {
    if (id < 0 || id >= dims.PointCount()) {
      throw DecodeError("selection id out of grid range");
    }
  }
  return out;
}

}  // namespace vizndp::ndp
