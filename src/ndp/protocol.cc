#include "ndp/protocol.h"

#include <string>

#include "common/error.h"

namespace vizndp::ndp {

const char* SelectionEncodingName(SelectionEncoding e) {
  switch (e) {
    case SelectionEncoding::kIdValue: return "id+value";
    case SelectionEncoding::kDeltaVarint: return "delta-varint";
    case SelectionEncoding::kBitmap: return "bitmap";
    case SelectionEncoding::kRunLength: return "run-length";
  }
  return "?";
}

msgpack::Value BrickRestrictionToValue(std::span<const std::int64_t> bricks) {
  msgpack::Array out;
  out.reserve(bricks.size());
  for (const std::int64_t b : bricks) out.emplace_back(b);
  return msgpack::Value(std::move(out));
}

std::vector<std::int64_t> BrickRestrictionFromValue(
    const msgpack::Value& value) {
  std::vector<std::int64_t> out;
  const auto& arr = value.As<msgpack::Array>();
  if (arr.size() > kMaxBrickRestriction) {
    throw DecodeError("brick restriction: absurd length " +
                      std::to_string(arr.size()));
  }
  out.reserve(arr.size());
  for (const msgpack::Value& v : arr) {
    if (!v.IsInteger()) throw DecodeError("brick restriction: non-integer id");
    const std::int64_t b = v.AsInt();
    if (b < 0) throw DecodeError("brick restriction: negative brick id");
    if (!out.empty() && b <= out.back()) {
      throw DecodeError("brick restriction: ids must be sorted and unique");
    }
    out.push_back(b);
  }
  return out;
}

void AppendVarint(std::uint64_t value, Bytes& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<Byte>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<Byte>(value));
}

std::uint64_t ReadVarint(ByteSpan data, size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    if (pos >= data.size()) throw DecodeError("varint truncated");
    const Byte b = data[pos++];
    if (shift >= 63 && (b & 0x7F) > 1) {
      throw DecodeError("varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return value;
    shift += 7;
  }
}

Bytes EncodeSelection(const contour::Selection& selection,
                      SelectionEncoding encoding) {
  const size_t count = selection.ids.size();
  VIZNDP_CHECK(selection.values.size() == static_cast<std::int64_t>(count));
  Bytes out;
  out.push_back(static_cast<Byte>(encoding));
  out.push_back(static_cast<Byte>(selection.values.type()));
  AppendLE<std::uint64_t>(count, out);

  switch (encoding) {
    case SelectionEncoding::kIdValue:
      for (const grid::PointId id : selection.ids) {
        AppendLE<std::int64_t>(id, out);
      }
      break;
    case SelectionEncoding::kDeltaVarint: {
      grid::PointId prev = 0;
      for (const grid::PointId id : selection.ids) {
        VIZNDP_CHECK_MSG(id >= prev, "delta encoding requires sorted ids");
        AppendVarint(static_cast<std::uint64_t>(id - prev), out);
        prev = id;
      }
      break;
    }
    case SelectionEncoding::kBitmap: {
      const auto npoints = static_cast<size_t>(selection.dims.PointCount());
      AppendLE<std::uint64_t>(npoints, out);
      const size_t bitmap_at = out.size();
      out.insert(out.end(), (npoints + 7) / 8, 0);
      for (const grid::PointId id : selection.ids) {
        out[bitmap_at + static_cast<size_t>(id) / 8] |=
            static_cast<Byte>(1u << (static_cast<size_t>(id) % 8));
      }
      break;
    }
    case SelectionEncoding::kRunLength: {
      // (gap from previous run's end, run length) varint pairs.
      grid::PointId prev_end = 0;
      size_t i = 0;
      while (i < count) {
        const grid::PointId start = selection.ids[i];
        VIZNDP_CHECK_MSG(start >= prev_end,
                         "run-length encoding requires sorted unique ids");
        size_t run = 1;
        while (i + run < count &&
               selection.ids[i + run] == start + static_cast<std::int64_t>(run)) {
          ++run;
        }
        AppendVarint(static_cast<std::uint64_t>(start - prev_end), out);
        AppendVarint(run, out);
        prev_end = start + static_cast<std::int64_t>(run);
        i += run;
      }
      break;
    }
  }
  const ByteSpan raw = selection.values.raw();
  out.insert(out.end(), raw.begin(), raw.end());
  return out;
}

DecodedSelection DecodeSelection(ByteSpan payload, const grid::Dims& dims) {
  if (payload.size() < 10) throw DecodeError("selection payload too short");
  const auto encoding = static_cast<SelectionEncoding>(payload[0]);
  const auto type = static_cast<grid::DataType>(payload[1]);
  const std::uint64_t count = LoadLE<std::uint64_t>(payload.data() + 2);
  size_t pos = 10;

  DecodedSelection out;
  out.ids.reserve(count);
  switch (encoding) {
    case SelectionEncoding::kIdValue:
      if (pos + count * 8 > payload.size()) {
        throw DecodeError("id+value payload truncated");
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        out.ids.push_back(LoadLE<std::int64_t>(payload.data() + pos));
        pos += 8;
      }
      break;
    case SelectionEncoding::kDeltaVarint: {
      grid::PointId prev = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        prev += static_cast<grid::PointId>(ReadVarint(payload, pos));
        out.ids.push_back(prev);
      }
      break;
    }
    case SelectionEncoding::kBitmap: {
      if (pos + 8 > payload.size()) throw DecodeError("bitmap payload truncated");
      const std::uint64_t npoints = LoadLE<std::uint64_t>(payload.data() + pos);
      pos += 8;
      if (npoints != static_cast<std::uint64_t>(dims.PointCount())) {
        throw DecodeError("bitmap point count does not match grid");
      }
      const size_t bitmap_bytes = (npoints + 7) / 8;
      if (pos + bitmap_bytes > payload.size()) {
        throw DecodeError("bitmap payload truncated");
      }
      for (std::uint64_t id = 0; id < npoints; ++id) {
        if (payload[pos + id / 8] & (1u << (id % 8))) {
          out.ids.push_back(static_cast<grid::PointId>(id));
        }
      }
      if (out.ids.size() != count) {
        throw DecodeError("bitmap population does not match count");
      }
      pos += bitmap_bytes;
      break;
    }
    case SelectionEncoding::kRunLength: {
      grid::PointId prev_end = 0;
      while (out.ids.size() < count) {
        const auto gap = static_cast<grid::PointId>(ReadVarint(payload, pos));
        const std::uint64_t run = ReadVarint(payload, pos);
        if (run == 0 || out.ids.size() + run > count) {
          throw DecodeError("run-length selection run overruns count");
        }
        const grid::PointId start = prev_end + gap;
        for (std::uint64_t r = 0; r < run; ++r) {
          out.ids.push_back(start + static_cast<grid::PointId>(r));
        }
        prev_end = start + static_cast<grid::PointId>(run);
      }
      break;
    }
    default:
      throw DecodeError("unknown selection encoding tag");
  }

  const size_t value_bytes = count * grid::DataTypeSize(type);
  if (pos + value_bytes != payload.size()) {
    throw DecodeError("selection value block has wrong size");
  }
  out.values = grid::DataArray(
      "selection", type,
      Bytes(payload.begin() + static_cast<std::ptrdiff_t>(pos), payload.end()));
  for (const grid::PointId id : out.ids) {
    if (id < 0 || id >= dims.PointCount()) {
      throw DecodeError("selection id out of grid range");
    }
  }
  return out;
}

}  // namespace vizndp::ndp
