#include "ndp/ndp_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <optional>
#include <thread>

#include "common/error.h"
#include "net/retry.h"
#include "contour/select.h"
#include "io/vnd_format.h"
#include "ndp/bricked_select.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "obs/windowed.h"
#include "rpc/trace_wire.h"

namespace vizndp::ndp {

using msgpack::Array;
using msgpack::Map;
using msgpack::Value;

std::uint64_t MintNodeId() {
  // Clock entropy mixed with a per-process counter: two incarnations in
  // the same process (testbed restart) and two processes started the
  // same nanosecond both still differ. Never 0 — 0 means "no identity"
  // on the wire.
  static std::atomic<std::uint64_t> salt{0};
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const std::uint64_t id = net::MixBits(
      static_cast<std::uint64_t>(now.count()) ^
      net::MixBits(salt.fetch_add(1, std::memory_order_relaxed) +
                   0xD6E8FEB86659FD93ull));
  return id != 0 ? id : 1;
}

namespace {

Value Triple(const std::array<double, 3>& v) {
  return Value(Array{Value(v[0]), Value(v[1]), Value(v[2])});
}

Value SnapshotsToValue(const std::vector<obs::MetricSnapshot>& snapshot) {
  Array out;
  out.reserve(snapshot.size());
  for (const obs::MetricSnapshot& s : snapshot) {
    Map m;
    m.emplace_back(Value("name"), Value(s.name));
    m.emplace_back(Value("kind"),
                   Value(std::string(obs::MetricKindName(s.kind))));
    m.emplace_back(Value("value"), Value(s.value));
    if (s.kind == obs::MetricSnapshot::Kind::kHistogram) {
      m.emplace_back(Value("count"), Value(s.count));
      Array bounds;
      bounds.reserve(s.bounds.size());
      for (const double b : s.bounds) bounds.emplace_back(b);
      m.emplace_back(Value("bounds"), Value(std::move(bounds)));
      Array buckets;
      buckets.reserve(s.buckets.size());
      for (const std::uint64_t b : s.buckets) buckets.emplace_back(b);
      m.emplace_back(Value("buckets"), Value(std::move(buckets)));
      if (s.exemplar_trace_id != 0) {
        m.emplace_back(Value("exemplar_value"), Value(s.exemplar_value));
        m.emplace_back(Value("exemplar_trace"), Value(s.exemplar_trace_id));
      }
      // Sliding-window series carry their span; absent for cumulative
      // ones, and old clients skip the key either way.
      if (s.window_seconds > 0) {
        m.emplace_back(Value("window_s"), Value(s.window_seconds));
      }
    }
    out.push_back(Value(std::move(m)));
  }
  return Value(std::move(out));
}

// Mid-stream admission: a started stream must never shed — `!busy:`
// tells the client "retry the whole call", and a retry would duplicate
// the chunks already shipped. Wait briefly for budget to free up (other
// streams release per batch, so turnover is fast); if the node stays
// saturated, fail plain so the client resumes from its cursor instead
// of restarting from scratch.
rpc::MemoryBudget::Reservation ReserveMidStream(rpc::MemoryBudget& budget,
                                                std::uint64_t bytes) {
  for (int attempt = 0;; ++attempt) {
    try {
      return rpc::MemoryBudget::Reservation(budget, bytes);
    } catch (const BusyError& e) {
      if (attempt >= 200) {
        throw Error(std::string("stream reservation starved mid-flight: ") +
                    e.what());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

}  // namespace

msgpack::Value NdpServer::Select(const std::string& key,
                                 const std::string& array,
                                 const std::vector<double>& isovalues,
                                 SelectionEncoding encoding,
                                 const std::vector<std::int64_t>* only_bricks) {
  obs::Span total_span("ndp.select");
  const io::VndReader reader(gateway_.Open(key));
  const io::ArrayMeta* meta = reader.header().Find(array);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + array + "' in VND file");
  if (only_bricks != nullptr) {
    VIZNDP_CHECK_MSG(meta->bricks.has_value(),
                     "brick restriction on unbricked array '" + array + "'");
    const auto brick_count = static_cast<std::int64_t>(
        meta->bricks->entries.size());
    VIZNDP_CHECK_MSG(
        only_bricks->empty() || only_bricks->back() < brick_count,
        "brick restriction id out of range for '" + array + "'");
    metrics_.GetCounter("ndp_restricted_select_total").Increment();
  }

  // Admission by working-set size: the decompressed array bounds this
  // request's memory high-water mark. Throws BusyError (always
  // retryable — nothing has been read yet) when the node is saturated.
  rpc::MemoryBudget::Reservation reservation;
  if (mem_budget_ != nullptr) {
    reservation = rpc::MemoryBudget::Reservation(*mem_budget_, meta->raw_size);
  }

  contour::Selection selection;
  std::uint64_t stored_bytes = 0;
  std::int64_t bricks_total = 0;
  std::int64_t bricks_read = 0;
  double read_s = 0;
  double select_s = 0;
  bool use_bricked = meta->bricks.has_value();
  if (use_bricked) {
    // Brick-indexed fast path: only straddling bricks are fetched and
    // decompressed.
    obs::Span read_span("ndp.read");
    BrickedSelectStats bstats;
    try {
      selection = SelectInterestingPointsBricked(reader, array, isovalues,
                                                 &bstats, only_bricks,
                                                 quarantine_, key);
    } catch (const CorruptDataError& e) {
      if (only_bricks != nullptr) {
        // Sub-request: the whole-blob read would answer for the *entire*
        // array, not this shard's slice, and the caller has a better
        // rung anyway — a replica holding an independent copy. Cross the
        // wire typed so the sharded client fails over.
        metrics_.GetCounter("ndp_restricted_corrupt_total").Increment();
        obs::GlobalEventLog().Append("ndp.restricted_corrupt",
                                     "array=" + array);
        throw;
      }
      // A brick failed its CRC twice (or decoded to garbage). The
      // whole-blob path below re-reads the entire array and checks the
      // blob-level CRC, so a brick-local flip may still yield a correct
      // answer from the same store.
      metrics_.GetCounter("ndp_wholeblob_fallback_total").Increment();
      obs::GlobalEventLog().Append("ndp.wholeblob_fallback",
                                   "array=" + array);
      std::fprintf(stderr, "[vizndp] brick integrity failure (%s); %s\n",
                   e.what(), "falling back to whole-blob read");
      use_bricked = false;
    } catch (const IoError& e) {
      // The gateway's retry ladder already burned its budget on the
      // brick reads. The whole-blob read is a fresh op sequence against
      // the same store — an EIO storm that has passed heals here.
      if (only_bricks != nullptr) {
        // Same reasoning as restricted corruption: the sharded caller's
        // replica failover is the better rung, so cross the wire typed.
        metrics_.GetCounter("ndp_restricted_io_total").Increment();
        obs::GlobalEventLog().Append("ndp.restricted_io", "array=" + array);
        throw;
      }
      metrics_.GetCounter("ndp_wholeblob_fallback_total").Increment();
      obs::GlobalEventLog().Append("ndp.wholeblob_fallback",
                                   "array=" + array + " reason=io");
      std::fprintf(stderr, "[vizndp] brick read I/O failure (%s); %s\n",
                   e.what(), "falling back to whole-blob read");
      use_bricked = false;
    }
    read_span.End();
    if (use_bricked) {
      stored_bytes = bstats.bytes_read;
      bricks_total = bstats.bricks_total;
      bricks_read = bstats.bricks_read;
      read_s = bstats.read_seconds;
      select_s = bstats.scan_seconds;
    }
  }
  if (!use_bricked) {
    // Source: ranged-read the full array blob, then scan it.
    stored_bytes = meta->stored_size;
    obs::Span read_span("ndp.read");
    const grid::DataArray data = reader.ReadArray(array);
    read_span.End();
    read_s = read_span.ElapsedSeconds();
    obs::Span scan_span("ndp.select.scan");
    selection = prefilter_threads_ == 1
                    ? contour::SelectInterestingPoints(reader.header().dims,
                                                       data, isovalues)
                    : contour::SelectInterestingPointsParallel(
                          reader.header().dims, data, isovalues,
                          prefilter_threads_);
    scan_span.End();
    select_s = scan_span.ElapsedSeconds();
  }
  obs::Span pack_span("ndp.pack");
  Bytes payload = EncodeSelection(selection, encoding);
  pack_span.End();

  metrics_.GetCounter("ndp_select_requests_total").Increment();
  metrics_.GetCounter("ndp_bytes_in_total").Increment(stored_bytes);
  metrics_.GetCounter("ndp_bytes_out_total").Increment(payload.size());
  metrics_.GetCounter("ndp_selected_points_total")
      .Increment(selection.ids.size());
  if (bricks_total > bricks_read) {
    metrics_.GetCounter("ndp_bricks_skipped_total")
        .Increment(static_cast<std::uint64_t>(bricks_total - bricks_read));
  }

  const auto& h = reader.header();
  Map reply;
  reply.emplace_back(Value("payload"), Value(std::move(payload)));
  reply.emplace_back(Value("dims"),
                     Value(Array{Value(h.dims.nx), Value(h.dims.ny),
                                 Value(h.dims.nz)}));
  reply.emplace_back(Value("origin"), Triple(h.geometry.origin));
  reply.emplace_back(Value("spacing"), Triple(h.geometry.spacing));
  reply.emplace_back(Value("dtype"),
                     Value(std::string(grid::DataTypeName(meta->type))));
  reply.emplace_back(Value("stored_bytes"), Value(stored_bytes));
  reply.emplace_back(Value("raw_bytes"), Value(meta->raw_size));
  reply.emplace_back(Value("bricks_total"), Value(bricks_total));
  reply.emplace_back(Value("bricks_read"), Value(bricks_read));
  reply.emplace_back(Value("selected"),
                     Value(static_cast<std::uint64_t>(selection.ids.size())));
  reply.emplace_back(Value("total_points"),
                     Value(static_cast<std::uint64_t>(selection.total_points)));
  reply.emplace_back(Value("read_s"), Value(read_s));
  reply.emplace_back(Value("select_s"), Value(select_s));
  total_span.End();
  // Windowed: the scrape exports ndp_select_seconds (cumulative, as
  // ever) plus ndp_select_seconds_window for sliding-window quantiles.
  metrics_.GetWindowedHistogram("ndp_select_seconds", obs::LatencyBounds())
      .Observe(total_span.ElapsedSeconds());
  return Value(std::move(reply));
}

msgpack::Value NdpServer::SelectStreaming(
    const std::string& key, const std::string& array,
    const std::vector<double>& isovalues, SelectionEncoding encoding,
    const std::vector<std::int64_t>* only_bricks, const StreamParams& stream,
    rpc::StreamSink& sink) {
  obs::Span total_span("ndp.select.stream");
  metrics_.GetCounter("ndp_stream_requests_total").Increment();
  const io::VndReader reader(gateway_.Open(key));
  const io::ArrayMeta* meta = reader.header().Find(array);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + array + "' in VND file");
  if (!meta->bricks.has_value()) {
    // Unbricked arrays have no brick-id cursor space to chunk over;
    // degrade to the monolithic reply (zero chunk frames — the client
    // accepts a plain type-1 result as the degraded form of a streaming
    // request, same as talking to a pre-streaming server).
    VIZNDP_CHECK_MSG(only_bricks == nullptr,
                     "brick restriction on unbricked array '" + array + "'");
    return Select(key, array, isovalues, encoding, nullptr);
  }
  const auto brick_count =
      static_cast<std::int64_t>(meta->bricks->entries.size());
  if (only_bricks != nullptr) {
    VIZNDP_CHECK_MSG(
        only_bricks->empty() || only_bricks->back() < brick_count,
        "brick restriction id out of range for '" + array + "'");
    metrics_.GetCounter("ndp_restricted_select_total").Increment();
  }

  // The stream covers exactly the straddling bricks (within the
  // restriction, above the resume cursor), in ascending id order — the
  // same set the monolithic bricked pre-filter reads, just split into
  // batches so each batch's slab is reserved, scanned, shipped, and
  // released before the next begins. The straddle predicate must match
  // bricked_select.cc exactly or resumed streams would cover a
  // different brick set than the original.
  std::vector<std::int64_t> todo;
  {
    size_t ri = 0;  // walks the sorted restriction
    for (std::int64_t b = 0; b < brick_count; ++b) {
      if (only_bricks != nullptr) {
        while (ri < only_bricks->size() && (*only_bricks)[ri] < b) ++ri;
        if (ri >= only_bricks->size() || (*only_bricks)[ri] != b) continue;
      }
      if (b <= stream.resume_after) continue;
      const io::BrickEntry& e = meta->bricks->entries[static_cast<size_t>(b)];
      const bool straddles =
          std::any_of(isovalues.begin(), isovalues.end(), [&](double iso) {
            return e.min < iso && e.max >= iso;
          });
      if (straddles) todo.push_back(b);
    }
  }

  const io::BrickGrid bgrid(reader.header().dims, meta->bricks->edge);
  const auto batch_bytes = [&](size_t start, size_t n) {
    // Decompressed slab bytes this batch pins at once — the incremental
    // analogue of the monolithic path's whole-array raw_size.
    std::uint64_t bytes = 0;
    for (size_t i = start; i < start + n; ++i) {
      bytes +=
          static_cast<std::uint64_t>(bgrid.BrickExtent(todo[i]).PointCount()) *
          grid::DataTypeSize(meta->type);
    }
    return bytes;
  };
  const auto chunk_bricks = static_cast<size_t>(stream.chunk_bricks);

  // First batch's reservation happens before anything is emitted, so an
  // exhausted budget sheds the request with the ordinary retryable
  // `!busy:` — the one window where shedding a stream is allowed.
  rpc::MemoryBudget::Reservation reservation;
  if (mem_budget_ != nullptr && !todo.empty()) {
    reservation = rpc::MemoryBudget::Reservation(
        *mem_budget_, batch_bytes(0, std::min(chunk_bricks, todo.size())));
  }

  const auto on_cancel = [&]() {
    // One counter, one event: covers both the client's explicit cancel
    // frame and a peer-closed transport — either way the remaining
    // brick work is abandoned. The dispatcher stamps the terminal with
    // the `!cancelled:` error, so this result is never shipped.
    metrics_.GetCounter("ndp_stream_cancelled_total").Increment();
    obs::GlobalEventLog().Append("ndp.stream_cancel", "array=" + array);
    return Value();
  };

  const auto& h = reader.header();
  StreamHeader header;
  header.dims = h.dims;
  for (int i = 0; i < 3; ++i) {
    header.origin[i] = h.geometry.origin[static_cast<size_t>(i)];
    header.spacing[i] = h.geometry.spacing[static_cast<size_t>(i)];
  }
  header.dtype = meta->type;
  header.bricks_total = brick_count;
  header.stream_bricks = static_cast<std::int64_t>(todo.size());
  header.total_points = h.dims.PointCount();
  if (!sink.Emit(StreamHeaderToValue(header))) return on_cancel();

  std::uint64_t stored_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t selected_total = 0;
  std::int64_t bricks_read = 0;
  double read_s = 0;
  double select_s = 0;
  std::int64_t chunks = 0;
  // Registry lookups are name-hash-under-mutex; resolve the per-chunk
  // instruments once per stream, not once per chunk.
  auto& chunk_hist = metrics_.GetWindowedHistogram("ndp_stream_chunk_seconds",
                                                   obs::LatencyBounds());
  auto& chunk_counter = metrics_.GetCounter("ndp_stream_chunks_total");
  for (size_t start = 0; start < todo.size(); start += chunk_bricks) {
    if (sink.Cancelled()) return on_cancel();
    const size_t n = std::min(chunk_bricks, todo.size() - start);
    if (mem_budget_ != nullptr && start > 0) {
      reservation = ReserveMidStream(*mem_budget_, batch_bytes(start, n));
    }
    obs::Span chunk_span("ndp.stream.chunk");
    const std::vector<std::int64_t> batch(
        todo.begin() + static_cast<std::ptrdiff_t>(start),
        todo.begin() + static_cast<std::ptrdiff_t>(start + n));
    BrickedSelectStats bstats;
    contour::Selection selection;
    try {
      selection = SelectInterestingPointsBricked(reader, array, isovalues,
                                                 &bstats, &batch, quarantine_,
                                                 key);
    } catch (const CorruptDataError&) {
      // No mid-stream whole-blob fallback: a blob-sized read would blow
      // the per-batch memory contract and answer for bricks already
      // shipped. Cross the wire typed; the client's resume-on-a-replica
      // rung (an independent data copy) is the right recovery.
      if (only_bricks != nullptr) {
        metrics_.GetCounter("ndp_restricted_corrupt_total").Increment();
        obs::GlobalEventLog().Append("ndp.restricted_corrupt",
                                     "array=" + array);
      }
      throw;
    } catch (const IoError&) {
      if (only_bricks != nullptr) {
        metrics_.GetCounter("ndp_restricted_io_total").Increment();
        obs::GlobalEventLog().Append("ndp.restricted_io", "array=" + array);
      }
      throw;
    }
    StreamChunk chunk;
    chunk.cursor = batch.back();
    chunk.bricks = static_cast<std::int64_t>(batch.size());
    chunk.selected = static_cast<std::int64_t>(selection.ids.size());
    chunk.payload = EncodeSelection(selection, encoding);
    stored_bytes += bstats.bytes_read;
    payload_bytes += chunk.payload.size();
    selected_total += selection.ids.size();
    bricks_read += bstats.bricks_read;
    read_s += bstats.read_seconds;
    select_s += bstats.scan_seconds;
    const bool emitted = sink.Emit(StreamChunkToValue(std::move(chunk)));
    // Release this batch's slab before the next reservation — the whole
    // point of streaming admission: the budget sees one batch at a
    // time, not the whole array.
    reservation = rpc::MemoryBudget::Reservation();
    chunk_span.End();
    chunk_hist.Observe(chunk_span.ElapsedSeconds());
    chunk_counter.Increment();
    ++chunks;
    if (!emitted) return on_cancel();
  }

  metrics_.GetCounter("ndp_select_requests_total").Increment();
  metrics_.GetCounter("ndp_bytes_in_total").Increment(stored_bytes);
  metrics_.GetCounter("ndp_bytes_out_total").Increment(payload_bytes);
  metrics_.GetCounter("ndp_selected_points_total").Increment(selected_total);
  if (brick_count > bricks_read) {
    metrics_.GetCounter("ndp_bricks_skipped_total")
        .Increment(static_cast<std::uint64_t>(brick_count - bricks_read));
  }

  // Terminal summary: the monolithic reply minus "payload" (the chunks
  // carried the data). "selected" counts shipped points, which may
  // exceed the monolithic count by ghost-layer points shared across
  // batch boundaries — consumers that need exact dedup use the
  // SparseField's ValidCount after scattering.
  Map reply;
  reply.emplace_back(Value("dims"),
                     Value(Array{Value(h.dims.nx), Value(h.dims.ny),
                                 Value(h.dims.nz)}));
  reply.emplace_back(Value("origin"), Triple(h.geometry.origin));
  reply.emplace_back(Value("spacing"), Triple(h.geometry.spacing));
  reply.emplace_back(Value("dtype"),
                     Value(std::string(grid::DataTypeName(meta->type))));
  reply.emplace_back(Value("stored_bytes"), Value(stored_bytes));
  reply.emplace_back(Value("raw_bytes"), Value(meta->raw_size));
  reply.emplace_back(Value("bricks_total"), Value(brick_count));
  reply.emplace_back(Value("bricks_read"), Value(bricks_read));
  reply.emplace_back(Value("selected"), Value(selected_total));
  reply.emplace_back(Value("total_points"),
                     Value(static_cast<std::uint64_t>(h.dims.PointCount())));
  reply.emplace_back(Value("read_s"), Value(read_s));
  reply.emplace_back(Value("select_s"), Value(select_s));
  reply.emplace_back(Value("chunks"), Value(chunks));
  total_span.End();
  metrics_.GetWindowedHistogram("ndp_select_seconds", obs::LatencyBounds())
      .Observe(total_span.ElapsedSeconds());
  return Value(std::move(reply));
}

msgpack::Value NdpServer::Info(const std::string& key) {
  metrics_.GetCounter("ndp_info_requests_total").Increment();
  const io::VndReader reader(gateway_.Open(key));
  const auto& h = reader.header();
  Array arrays;
  for (const io::ArrayMeta& m : h.arrays) {
    Map e;
    e.emplace_back(Value("name"), Value(m.name));
    e.emplace_back(Value("type"),
                   Value(std::string(grid::DataTypeName(m.type))));
    e.emplace_back(Value("codec"), Value(m.codec));
    e.emplace_back(Value("raw_size"), Value(m.raw_size));
    e.emplace_back(Value("stored_size"), Value(m.stored_size));
    // Brick decomposition, so a sharded client can partition the brick
    // space without reading the full header: 0 bricks = monolithic blob.
    e.emplace_back(Value("bricks"),
                   Value(static_cast<std::int64_t>(
                       m.bricks.has_value() ? m.bricks->entries.size() : 0)));
    e.emplace_back(Value("brick_edge"),
                   Value(static_cast<std::int64_t>(
                       m.bricks.has_value() ? m.bricks->edge : 0)));
    arrays.push_back(Value(std::move(e)));
  }
  Map reply;
  reply.emplace_back(Value("dims"),
                     Value(Array{Value(h.dims.nx), Value(h.dims.ny),
                                 Value(h.dims.nz)}));
  reply.emplace_back(Value("arrays"), Value(std::move(arrays)));
  return Value(std::move(reply));
}

msgpack::Value NdpServer::Stats(const std::string& key,
                                const std::string& array, int bins) {
  VIZNDP_CHECK_MSG(bins >= 1 && bins <= 4096, "bins must be in [1, 4096]");
  metrics_.GetCounter("ndp_stats_requests_total").Increment();
  obs::Span total_span("ndp.stats");
  const io::VndReader reader(gateway_.Open(key));
  const io::ArrayMeta* meta = reader.header().Find(array);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + array + "' in VND file");

  // Brick-indexed fast path: the header already carries per-brick
  // min/max, so the global range needs no data pass at all.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool range_from_index = false;
  if (meta->bricks.has_value() && !meta->bricks->entries.empty()) {
    for (const io::BrickEntry& e : meta->bricks->entries) {
      lo = std::min(lo, e.min);
      hi = std::max(hi, e.max);
    }
    range_from_index = true;
    metrics_.GetCounter("ndp_stats_index_fastpath_total").Increment();
  }

  const grid::DataArray data = reader.ReadArray(array);
  if (!range_from_index) {
    const auto [dlo, dhi] = data.Range();
    lo = dlo;
    hi = dhi;
  }

  std::vector<std::uint64_t> histogram(static_cast<size_t>(bins), 0);
  const double width = hi > lo ? (hi - lo) / bins : 1.0;
  const auto accumulate = [&](auto view) {
    for (const auto v : view) {
      const double d = static_cast<double>(v);
      auto bin = static_cast<std::int64_t>((d - lo) / width);
      bin = std::clamp<std::int64_t>(bin, 0, bins - 1);
      ++histogram[static_cast<size_t>(bin)];
    }
  };
  switch (data.type()) {
    case grid::DataType::Float32: accumulate(data.View<float>()); break;
    case grid::DataType::Float64: accumulate(data.View<double>()); break;
    default: throw Error("stats require a floating-point array");
  }

  Map reply;
  reply.emplace_back(Value("min"), Value(lo));
  reply.emplace_back(Value("max"), Value(hi));
  reply.emplace_back(Value("count"),
                     Value(static_cast<std::uint64_t>(data.size())));
  Array counts;
  counts.reserve(histogram.size());
  for (const std::uint64_t c : histogram) counts.emplace_back(c);
  reply.emplace_back(Value("histogram"), Value(std::move(counts)));
  return Value(std::move(reply));
}

void NdpServer::Bind(rpc::Server& server) {
  server.BindStreaming(
      kRpcNdpSelect, [this](const Array& p, rpc::StreamSink* sink) -> Value {
        std::vector<double> isovalues;
        for (const Value& v : p.at(3).As<Array>()) {
          isovalues.push_back(v.AsDouble());
        }
        // Optional 6th element: the sub-request brick restriction (absent
        // or empty = the whole brick space, the pre-sharding request
        // shape).
        std::optional<std::vector<std::int64_t>> bricks;
        if (p.size() > 5 && p.at(5).Is<Array>() &&
            !p.at(5).As<Array>().empty()) {
          bricks = BrickRestrictionFromValue(p.at(5));
        }
        // Optional 7th element: the stream map (protocol.h). Absent or
        // Nil — and any sink-less dispatch, e.g. the in-process Dispatch
        // without a transport — means the monolithic reply.
        std::optional<StreamParams> stream;
        if (p.size() > 6) stream = StreamParamsFromValue(p.at(6));
        const auto encoding = static_cast<SelectionEncoding>(p.at(4).AsUint());
        // p[0] is the bucket, fixed at gateway construction; kept in the
        // protocol so multi-bucket servers remain possible.
        if (stream.has_value() && sink != nullptr) {
          return SelectStreaming(p.at(1).As<std::string>(),
                                 p.at(2).As<std::string>(), isovalues,
                                 encoding,
                                 bricks.has_value() ? &*bricks : nullptr,
                                 *stream, *sink);
        }
        return Select(p.at(1).As<std::string>(), p.at(2).As<std::string>(),
                      isovalues, encoding,
                      bricks.has_value() ? &*bricks : nullptr);
      });
  server.Bind(kRpcNdpInfo, [this](const Array& p) -> Value {
    return Info(p.at(1).As<std::string>());
  });
  server.Bind(kRpcNdpStats, [this](const Array& p) -> Value {
    return Stats(p.at(1).As<std::string>(), p.at(2).As<std::string>(),
                 static_cast<int>(p.at(3).AsInt()));
  });
  // Telemetry scrape: this server's pre-filter registry, the rpc
  // dispatcher's per-method registry, and the process-wide substrate
  // registry (gateway + codec metrics). Names are disjoint by
  // construction, so a flat concatenation is unambiguous. The handler
  // lives inside `server`, so capturing it by reference is safe.
  // Structured by default; an optional params[0] format string ("text",
  // "json", "prom") renders server-side instead, so a Prometheus scraper
  // can hit the node through any thin RPC shim without a custom parser.
  server.Bind(kRpcNdpMetrics, [this, &server](const Array& p) -> Value {
    std::vector<obs::MetricSnapshot> all = metrics_.Snapshot();
    for (auto& s : server.metrics().Snapshot()) all.push_back(std::move(s));
    for (auto& s : obs::DefaultRegistry().Snapshot()) {
      all.push_back(std::move(s));
    }
    // Wall-clock + uptime stamp, once per scrape (not per registry), so
    // an external scraper can turn two expositions into rates.
    obs::StampSnapshot(all);
    if (!p.empty() && p.at(0).Is<std::string>() &&
        !p.at(0).As<std::string>().empty()) {
      return Value(obs::FormatSnapshot(all, p.at(0).As<std::string>()));
    }
    return SnapshotsToValue(all);
  });
  // Trace drain: ships (and clears) the storage node's span buffer so
  // the client can merge the server half of a split-pipeline trace. A
  // nonzero u64 in params[0] extracts only that trace's spans and leaves
  // everything else buffered for other requests' scrapes.
  server.Bind(kRpcNdpTrace, [](const Array& p) -> Value {
    std::uint64_t trace_id = 0;
    if (!p.empty() && p.at(0).IsInteger()) trace_id = p.at(0).AsUint();
    return rpc::EventsToValue(trace_id != 0
                                  ? obs::GlobalTracer().Extract(trace_id)
                                  : obs::GlobalTracer().Drain());
  });
  // Liveness summary: what is executing right now and under which trace,
  // so an operator staring at a slow client can jump straight from
  // "ndp.select, 2.3 s in flight, trace f00d..." to the merged timeline.
  server.Bind(kRpcNdpHealth, [this, &server](const Array& p) -> Value {
    // Optional first param: the prober's cluster view epoch. Remember
    // the highest one seen (old clients send no params and are
    // unaffected).
    if (!p.empty() && p.at(0).IsInteger()) {
      const std::uint64_t epoch = p.at(0).AsUint();
      std::uint64_t seen = seen_view_epoch_.load(std::memory_order_relaxed);
      while (epoch > seen &&
             !seen_view_epoch_.compare_exchange_weak(
                 seen, epoch, std::memory_order_relaxed)) {
      }
    }
    const std::uint64_t now_us = obs::GlobalTracer().NowMicros();
    Array requests;
    for (const rpc::Server::InflightRequest& r : server.InflightSnapshot()) {
      Map m;
      m.emplace_back(Value("method"), Value(r.method));
      m.emplace_back(Value("trace_id"), Value(r.trace_id));
      m.emplace_back(Value("age_us"),
                     Value(now_us > r.start_us ? now_us - r.start_us : 0));
      requests.push_back(Value(std::move(m)));
    }
    Map reply;
    reply.emplace_back(Value("draining"), Value(server.draining()));
    reply.emplace_back(Value("inflight"),
                       Value(static_cast<std::int64_t>(server.inflight())));
    reply.emplace_back(Value("mem_in_use"),
                       Value(server.memory_budget().in_use()));
    reply.emplace_back(Value("mem_limit"),
                       Value(server.memory_budget().limit()));
    reply.emplace_back(Value("requests"), Value(std::move(requests)));
    // Node identity + epoch echo (new in the self-healing tier; old
    // clients parse the keys they know and skip these).
    reply.emplace_back(Value("node_id"), Value(node_id_));
    reply.emplace_back(Value("view_epoch"),
                       Value(seen_view_epoch_.load(
                           std::memory_order_relaxed)));
    // Clock stamps plus the sliding-window latency summary of the
    // pre-filter (new in the fleet-observability tier; clients parse
    // the keys they know). The window quantiles are what FleetScraper's
    // slow-node detector and `vizndp_tool top` read per probe.
    reply.emplace_back(Value("wall_s"), Value(obs::WallTimeSeconds()));
    reply.emplace_back(Value("uptime_s"),
                       Value(obs::ProcessUptimeSeconds()));
    {
      const obs::MetricSnapshot w =
          metrics_
              .GetWindowedHistogram("ndp_select_seconds",
                                    obs::LatencyBounds())
              .WindowSnapshot();
      Map window;
      window.emplace_back(Value("seconds"), Value(w.window_seconds));
      window.emplace_back(Value("count"), Value(w.count));
      window.emplace_back(Value("p50"), Value(obs::SnapshotQuantile(w, 0.5)));
      window.emplace_back(Value("p95"),
                          Value(obs::SnapshotQuantile(w, 0.95)));
      window.emplace_back(Value("p99"),
                          Value(obs::SnapshotQuantile(w, 0.99)));
      reply.emplace_back(Value("window"), Value(std::move(window)));
    }
    // Per-objective SLO state when a tracker is colocated with this node.
    if (slo_status_fn_) {
      Array slo;
      for (const obs::SloStatus& st : slo_status_fn_()) {
        Map m;
        m.emplace_back(Value("name"), Value(st.name));
        m.emplace_back(Value("budget_remaining"),
                       Value(st.budget_remaining));
        m.emplace_back(Value("burn_short"), Value(st.burn_short));
        m.emplace_back(Value("burn_long"), Value(st.burn_long));
        m.emplace_back(Value("alerting"), Value(st.alerting));
        slo.push_back(Value(std::move(m)));
      }
      reply.emplace_back(Value("slo"), Value(std::move(slo)));
    }
    // Scrub-and-quarantine status (absent when no scrubber is wired;
    // clients parse the keys they know).
    if (scrubber_ != nullptr) {
      const storage::ScrubStatus s = scrubber_->status();
      Map scrub;
      scrub.emplace_back(Value("running"), Value(s.running));
      scrub.emplace_back(Value("passes"), Value(s.passes));
      scrub.emplace_back(Value("bricks_checked"), Value(s.bricks_checked));
      scrub.emplace_back(Value("corrupt_found"), Value(s.corrupt_found));
      scrub.emplace_back(Value("readmitted"), Value(s.readmitted));
      scrub.emplace_back(Value("quarantined"), Value(s.quarantined_now));
      reply.emplace_back(Value("scrub"), Value(std::move(scrub)));
    }
    return Value(std::move(reply));
  });
}

}  // namespace vizndp::ndp
