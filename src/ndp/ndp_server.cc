#include "ndp/ndp_server.h"

#include <algorithm>

#include "contour/select.h"
#include "io/vnd_format.h"
#include "ndp/bricked_select.h"

namespace vizndp::ndp {

using msgpack::Array;
using msgpack::Map;
using msgpack::Value;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Value Triple(const std::array<double, 3>& v) {
  return Value(Array{Value(v[0]), Value(v[1]), Value(v[2])});
}

}  // namespace

msgpack::Value NdpServer::Select(const std::string& key,
                                 const std::string& array,
                                 const std::vector<double>& isovalues,
                                 SelectionEncoding encoding) {
  auto t0 = std::chrono::steady_clock::now();
  const io::VndReader reader(gateway_.Open(key));
  const io::ArrayMeta* meta = reader.header().Find(array);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + array + "' in VND file");

  contour::Selection selection;
  std::uint64_t stored_bytes = 0;
  std::int64_t bricks_total = 0;
  std::int64_t bricks_read = 0;
  double read_s = 0;
  double select_s = 0;
  if (meta->bricks.has_value()) {
    // Brick-indexed fast path: only straddling bricks are fetched and
    // decompressed.
    BrickedSelectStats bstats;
    selection =
        SelectInterestingPointsBricked(reader, array, isovalues, &bstats);
    stored_bytes = bstats.bytes_read;
    bricks_total = bstats.bricks_total;
    bricks_read = bstats.bricks_read;
    read_s = bstats.read_seconds;
    select_s = bstats.scan_seconds;
  } else {
    // Source: ranged-read the full array blob, then scan it.
    stored_bytes = meta->stored_size;
    const grid::DataArray data = reader.ReadArray(array);
    read_s = SecondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    selection = prefilter_threads_ == 1
                    ? contour::SelectInterestingPoints(reader.header().dims,
                                                       data, isovalues)
                    : contour::SelectInterestingPointsParallel(
                          reader.header().dims, data, isovalues,
                          prefilter_threads_);
    select_s = SecondsSince(t0);
  }
  Bytes payload = EncodeSelection(selection, encoding);

  const auto& h = reader.header();
  Map reply;
  reply.emplace_back(Value("payload"), Value(std::move(payload)));
  reply.emplace_back(Value("dims"),
                     Value(Array{Value(h.dims.nx), Value(h.dims.ny),
                                 Value(h.dims.nz)}));
  reply.emplace_back(Value("origin"), Triple(h.geometry.origin));
  reply.emplace_back(Value("spacing"), Triple(h.geometry.spacing));
  reply.emplace_back(Value("dtype"),
                     Value(std::string(grid::DataTypeName(meta->type))));
  reply.emplace_back(Value("stored_bytes"), Value(stored_bytes));
  reply.emplace_back(Value("raw_bytes"), Value(meta->raw_size));
  reply.emplace_back(Value("bricks_total"), Value(bricks_total));
  reply.emplace_back(Value("bricks_read"), Value(bricks_read));
  reply.emplace_back(Value("selected"),
                     Value(static_cast<std::uint64_t>(selection.ids.size())));
  reply.emplace_back(Value("total_points"),
                     Value(static_cast<std::uint64_t>(selection.total_points)));
  reply.emplace_back(Value("read_s"), Value(read_s));
  reply.emplace_back(Value("select_s"), Value(select_s));
  return Value(std::move(reply));
}

msgpack::Value NdpServer::Info(const std::string& key) {
  const io::VndReader reader(gateway_.Open(key));
  const auto& h = reader.header();
  Array arrays;
  for (const io::ArrayMeta& m : h.arrays) {
    Map e;
    e.emplace_back(Value("name"), Value(m.name));
    e.emplace_back(Value("type"),
                   Value(std::string(grid::DataTypeName(m.type))));
    e.emplace_back(Value("codec"), Value(m.codec));
    e.emplace_back(Value("raw_size"), Value(m.raw_size));
    e.emplace_back(Value("stored_size"), Value(m.stored_size));
    arrays.push_back(Value(std::move(e)));
  }
  Map reply;
  reply.emplace_back(Value("dims"),
                     Value(Array{Value(h.dims.nx), Value(h.dims.ny),
                                 Value(h.dims.nz)}));
  reply.emplace_back(Value("arrays"), Value(std::move(arrays)));
  return Value(std::move(reply));
}

msgpack::Value NdpServer::Stats(const std::string& key,
                                const std::string& array, int bins) {
  VIZNDP_CHECK_MSG(bins >= 1 && bins <= 4096, "bins must be in [1, 4096]");
  const io::VndReader reader(gateway_.Open(key));
  const grid::DataArray data = reader.ReadArray(array);
  const auto [lo, hi] = data.Range();

  std::vector<std::uint64_t> histogram(static_cast<size_t>(bins), 0);
  const double width = hi > lo ? (hi - lo) / bins : 1.0;
  const auto accumulate = [&](auto view) {
    for (const auto v : view) {
      const double d = static_cast<double>(v);
      auto bin = static_cast<std::int64_t>((d - lo) / width);
      bin = std::clamp<std::int64_t>(bin, 0, bins - 1);
      ++histogram[static_cast<size_t>(bin)];
    }
  };
  switch (data.type()) {
    case grid::DataType::Float32: accumulate(data.View<float>()); break;
    case grid::DataType::Float64: accumulate(data.View<double>()); break;
    default: throw Error("stats require a floating-point array");
  }

  Map reply;
  reply.emplace_back(Value("min"), Value(lo));
  reply.emplace_back(Value("max"), Value(hi));
  reply.emplace_back(Value("count"),
                     Value(static_cast<std::uint64_t>(data.size())));
  Array counts;
  counts.reserve(histogram.size());
  for (const std::uint64_t c : histogram) counts.emplace_back(c);
  reply.emplace_back(Value("histogram"), Value(std::move(counts)));
  return Value(std::move(reply));
}

void NdpServer::Bind(rpc::Server& server) {
  server.Bind(kRpcNdpSelect, [this](const Array& p) -> Value {
    std::vector<double> isovalues;
    for (const Value& v : p.at(3).As<Array>()) {
      isovalues.push_back(v.AsDouble());
    }
    // p[0] is the bucket, fixed at gateway construction; kept in the
    // protocol so multi-bucket servers remain possible.
    return Select(p.at(1).As<std::string>(), p.at(2).As<std::string>(),
                  isovalues,
                  static_cast<SelectionEncoding>(p.at(4).AsUint()));
  });
  server.Bind(kRpcNdpInfo, [this](const Array& p) -> Value {
    return Info(p.at(1).As<std::string>());
  });
  server.Bind(kRpcNdpStats, [this](const Array& p) -> Value {
    return Stats(p.at(1).As<std::string>(), p.at(2).As<std::string>(),
                 static_cast<int>(p.at(3).AsInt()));
  });
}

}  // namespace vizndp::ndp
