// Timestep-series management on top of the object store, plus a driver
// for the paper's headline workload: a contour movie over a simulation's
// timesteps (Figs. 7/8), run through either the traditional pipeline or
// the NDP split pipeline.
#pragma once

#include <functional>
#include <optional>

#include "contour/polydata.h"
#include "io/vnd_format.h"
#include "ndp/ndp_client.h"
#include "storage/file_gateway.h"

namespace vizndp::ndp {

// Key convention for timestep series: "<prefix>ts<label>.vnd".
class TimestepCatalog {
 public:
  // `gateway` must outlive the catalog.
  explicit TimestepCatalog(storage::FileGateway gateway,
                           std::string prefix = "")
      : gateway_(std::move(gateway)), prefix_(std::move(prefix)) {}

  std::string KeyFor(std::int64_t timestep) const {
    return prefix_ + "ts" + std::to_string(timestep) + ".vnd";
  }

  // Stores one timestep dataset under the series convention.
  void Put(std::int64_t timestep, const grid::Dataset& dataset,
           const compress::CodecPtr& codec);

  // Timestep labels present in the store, ascending.
  std::vector<std::int64_t> Timesteps() const;

  bool Contains(std::int64_t timestep) const {
    return gateway_.Exists(KeyFor(timestep));
  }

  io::VndReader Open(std::int64_t timestep) const {
    return io::VndReader(gateway_.Open(KeyFor(timestep)));
  }

 private:
  storage::FileGateway gateway_;
  std::string prefix_;
};

// Runs a contour movie across a catalog. Each frame's geometry is handed
// to `frame_sink` (render, write, accumulate — caller's choice).
class ContourMovieDriver {
 public:
  struct FrameInfo {
    std::int64_t timestep = 0;
    size_t triangles = 0;
    // Populated on the NDP path only.
    std::optional<NdpLoadStats> ndp_stats;
  };

  using FrameSink =
      std::function<void(const FrameInfo&, const contour::PolyData&)>;

  ContourMovieDriver(std::string array, std::vector<double> isovalues)
      : array_(std::move(array)), isovalues_(std::move(isovalues)) {}

  // Traditional pipeline: full-array reads through `catalog`'s gateway.
  // Returns per-frame info in timestep order.
  std::vector<FrameInfo> RunBaseline(const TimestepCatalog& catalog,
                                     const FrameSink& frame_sink) const;

  // NDP split pipeline: pre-filter via `client`, post-filter locally.
  // `catalog_prefix` must match the catalog the server side exposes.
  std::vector<FrameInfo> RunNdp(NdpClient& client,
                                const std::vector<std::int64_t>& timesteps,
                                const FrameSink& frame_sink,
                                const std::string& catalog_prefix = "") const;

 private:
  std::string array_;
  std::vector<double> isovalues_;
};

}  // namespace vizndp::ndp
