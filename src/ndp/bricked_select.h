// Brick-aware pre-filter: uses the VND brick index (per-brick min/max)
// to fetch and decompress only the bricks that can contain isovalue
// crossings. This attacks the bound the paper's conclusion calls out —
// "this speedup is upperbounded by local data read times" — because the
// storage node no longer reads or decompresses the whole array.
//
// Exactness: a grid cell belongs to exactly one brick (bricks own
// disjoint cell ranges and store a one-point ghost layer), and a skipped
// brick's [min, max] bounds every cell inside it, so skipped bricks
// contain no mixed cells. The resulting selection is identical to the
// dense SelectInterestingPoints.
#pragma once

#include <span>

#include "contour/select.h"
#include "io/vnd_format.h"
#include "storage/scrubber.h"

namespace vizndp::ndp {

struct BrickedSelectStats {
  std::int64_t bricks_total = 0;
  std::int64_t bricks_read = 0;
  std::uint64_t bytes_read = 0;  // compressed brick bytes fetched
  std::int64_t corrupt_bricks = 0;  // bricks that failed their CRC
  std::int64_t brick_rereads = 0;   // recovery re-reads issued
  std::int64_t quarantine_skips = 0;  // bricks served via the skip path
  double read_seconds = 0;       // fetch + decompress (measured)
  double scan_seconds = 0;       // per-brick selection scans (measured)
};

// Integrity: each brick is CRC-verified before decompression (format v2
// files). A failing brick is re-read from the store once — transient
// corruption (a flipped bit on the wire or in a cache) heals here — and
// a brick that fails twice throws CorruptDataError, at which point the
// caller (NdpServer) falls back to the whole-blob read for the array.
// Both events are counted in the stats and in obs::DefaultRegistry()
// (corrupt_brick_total / brick_reread_total).
//
// Sharding: `only_bricks` (sorted, unique brick ids) restricts the scan
// to those bricks — the sub-request shape of the scatter-gather cluster
// client. The restricted selection equals the unrestricted one filtered
// to points owned by (or on the ghost boundary of) the listed bricks, so
// the union of selections over a partition of the brick space, with
// boundary duplicates dropped by id, is exactly the full selection.
// nullptr means "all bricks".
//
// Quarantine: bricks the scrubber flagged corrupt-at-rest (`quarantine`
// keyed by `quarantine_key`) are excluded from the coalesced runs —
// their stored bytes are *known* bad, so the read+CRC-fail+re-read
// cycle is a doomed prepayment. Each skips straight to the recovery
// rung: one individual verified read (ndp_quarantine_skip_total +
// "ndp.quarantine_skip"). If the object was re-Put clean since the
// scrub, that read verifies and the brick serves normally; otherwise
// CorruptDataError propagates immediately. nullptr disables the check.
contour::Selection SelectInterestingPointsBricked(
    const io::VndReader& reader, const std::string& array,
    std::span<const double> isovalues, BrickedSelectStats* stats = nullptr,
    const std::vector<std::int64_t>* only_bricks = nullptr,
    const storage::QuarantineSet* quarantine = nullptr,
    const std::string& quarantine_key = {});

}  // namespace vizndp::ndp
