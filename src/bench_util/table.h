// Fixed-width table and CSV emitters so every bench prints the same
// rows/series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vizndp::bench_util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells);

  // Pretty fixed-width rendering.
  void Print(std::ostream& os) const;

  // Machine-readable companion output.
  void WriteCsv(const std::string& path) const;

  size_t RowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers used by the bench binaries.
std::string FormatSeconds(double s);
std::string FormatBytes(std::uint64_t bytes);
std::string FormatRatio(double r);      // "123.4x"
std::string FormatPermille(double pm);  // selectivity in ‰

// Directory where benches drop CSVs ("results", created on demand).
std::string ResultsDir();

}  // namespace vizndp::bench_util
