#include "bench_util/testbed.h"

#include <string>

#include "common/error.h"
#include "ndp/scrub_verify.h"
#include "net/inproc.h"
#include "storage/store_rpc.h"

namespace vizndp::bench_util {

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)), link_(config_.link), ssd_(config_.ssd) {
  if (config_.disk_root.empty()) {
    store_ = std::make_shared<storage::MemoryObjectStore>(&ssd_);
  } else {
    store_ = std::make_shared<storage::LocalObjectStore>(config_.disk_root,
                                                         &ssd_);
  }
  store_->CreateBucket(config_.bucket);
  fault_store_ = std::make_unique<storage::FaultInjectingStore>(*store_);

  // Everything the storage node itself does — store.* RPC handlers and
  // the NDP gateway alike — reads through the fault wrapper, so a
  // scripted device fault perturbs both serving paths.
  storage::BindObjectStoreRpc(rpc_server_, *fault_store_);
  ndp_server_ = std::make_unique<ndp::NdpServer>(LocalGateway());
  // Budget wiring mirrors `vizndp_tool serve`: limit 0 admits everything,
  // but overload tests can flip rpc_server().memory_budget() mid-run and
  // see ndp.select shed as retryable-busy.
  ndp_server_->SetMemoryBudget(&rpc_server_.memory_budget());
  ndp_server_->Bind(rpc_server_);

  // Two connections across the emulated link: one carrying baseline
  // object reads, one carrying NDP pre-filter calls. Each gets its own
  // server thread, mirroring the two services on the storage node.
  for (auto* client_slot : {&store_rpc_client_, &ndp_rpc_client_}) {
    net::TransportPair pair = net::CreateInProcPair(&link_);
    server_threads_.emplace_back(
        [this, server_end = std::shared_ptr<net::Transport>(
                   std::move(pair.a))]() mutable {
          rpc_server_.ServeTransport(*server_end);
        });
    *client_slot = std::make_shared<rpc::Client>(std::move(pair.b));
  }
  remote_store_ = std::make_unique<storage::RemoteObjectStore>(
      store_rpc_client_);
  ndp_client_ =
      std::make_shared<ndp::NdpClient>(ndp_rpc_client_, config_.bucket);
}

net::TransportPtr Testbed::ConnectToServer() {
  net::TransportPair pair = net::CreateInProcPair(&link_);
  server_threads_.emplace_back(
      [this, server_end = std::shared_ptr<net::Transport>(
                 std::move(pair.a))]() mutable {
        rpc_server_.ServeTransport(*server_end);
      });
  return std::move(pair.b);
}

void ClusterTestbed::StartNodeLocked(Node& node) {
  // The old incarnation's scrubber references the old server's memory
  // budget; stop it before that server can be released.
  node.scrub.reset();
  node.rpc = std::make_shared<rpc::Server>();
  node.ndp = std::make_shared<ndp::NdpServer>(LocalGateway());
  node.ndp->SetMemoryBudget(&node.rpc->memory_budget());
  // A fresh incarnation gets a fresh scrubber (the dtor of the old one
  // stops its thread) but keeps the node's quarantine set — restarting
  // does not forget which bricks were bad at rest.
  node.scrub = std::make_unique<storage::Scrubber>(
      LocalGateway(),
      ndp::MakeVndScrubVerifier(LocalGateway(), node.quarantine,
                                &node.rpc->memory_budget()),
      node.quarantine);
  node.ndp->SetQuarantine(&node.quarantine);
  node.ndp->SetScrubber(node.scrub.get());
  node.ndp->Bind(*node.rpc);
  node.alive = true;
}

net::TransportFactory ClusterTestbed::DialFactory(int i, bool decorated) {
  return [this, i, decorated]() -> net::TransportPtr {
    Node& node = *nodes_.at(static_cast<size_t>(i));
    std::shared_ptr<rpc::Server> srv;
    {
      std::lock_guard lk(node.mu);
      if (!node.alive) {
        throw PeerClosedError("node " + std::to_string(i) + " is down");
      }
      srv = node.rpc;
    }
    net::TransportPair pair = net::CreateInProcPair(&link_);
    {
      // The serve thread keeps its own shared_ptr to the server it
      // serves, so a later restart (which swaps node.rpc) never pulls
      // the server out from under a loop still draining.
      std::lock_guard lk(node.mu);
      node.serve_threads.emplace_back(
          [srv, server_end = std::shared_ptr<net::Transport>(
                    std::move(pair.a))]() mutable {
            srv->ServeTransport(*server_end);
          });
    }
    net::TransportPtr client_end = std::move(pair.b);
    if (decorated && config_.decorate) {
      client_end = config_.decorate(std::move(client_end), i);
    }
    return client_end;
  };
}

ClusterTestbed::ClusterTestbed(ClusterTestbedConfig config)
    : config_(std::move(config)), link_(config_.link), ssd_(config_.ssd) {
  store_ = std::make_shared<storage::MemoryObjectStore>(&ssd_);
  store_->CreateBucket(config_.bucket);
  fault_store_ = std::make_unique<storage::FaultInjectingStore>(*store_);

  // All nodes first (the dial factories index into nodes_), channels
  // second.
  for (int i = 0; i < config_.servers; ++i) {
    auto node = std::make_unique<Node>();
    std::lock_guard lk(node->mu);
    StartNodeLocked(*node);
    nodes_.push_back(std::move(node));
  }
  std::vector<std::shared_ptr<ndp::NdpClient>> clients;
  for (int i = 0; i < config_.servers; ++i) {
    Node& node = *nodes_[static_cast<size_t>(i)];
    // Data channel: chaos fault handle over a reconnecting transport —
    // scripts persist across the connections under them.
    auto faulty = std::make_unique<net::FaultInjectingTransport>(
        std::make_unique<net::ReconnectingTransport>(
            DialFactory(i, /*decorated=*/true)));
    node.fault = faulty.get();
    node.client = std::make_shared<ndp::NdpClient>(
        std::make_shared<rpc::Client>(std::move(faulty)), config_.bucket,
        config_.client_options);
    // Probe channel: its own connection, no decorator, no chaos faults.
    node.probe = std::make_shared<ndp::NdpClient>(
        std::make_shared<rpc::Client>(
            std::make_unique<net::ReconnectingTransport>(
                DialFactory(i, /*decorated=*/false))),
        config_.bucket, config_.client_options);
    clients.push_back(node.client);
  }
  sharded_ = std::make_shared<cluster::ShardedNdpClient>(
      std::move(clients), config_.replicas, config_.sharded);
}

std::shared_ptr<ndp::NdpClient> ClusterTestbed::NewNodeClient(
    int i, net::FaultInjectingTransport** fault) {
  net::TransportPtr transport = std::make_unique<net::ReconnectingTransport>(
      DialFactory(i, /*decorated=*/false));
  if (fault != nullptr) {
    auto faulty =
        std::make_unique<net::FaultInjectingTransport>(std::move(transport));
    *fault = faulty.get();
    transport = std::move(faulty);
  }
  return std::make_shared<ndp::NdpClient>(
      std::make_shared<rpc::Client>(std::move(transport)), config_.bucket,
      config_.client_options);
}

void ClusterTestbed::KillServer(int i) {
  Node& node = *nodes_.at(static_cast<size_t>(i));
  std::shared_ptr<rpc::Server> srv;
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(node.mu);
    if (!node.alive) return;
    node.alive = false;
    srv = node.rpc;
    threads.swap(node.serve_threads);
  }
  srv->Stop();
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void ClusterTestbed::RestartServer(int i) {
  Node& node = *nodes_.at(static_cast<size_t>(i));
  std::lock_guard lk(node.mu);
  if (node.alive) return;
  StartNodeLocked(node);
}

bool ClusterTestbed::alive(int i) {
  Node& node = *nodes_.at(static_cast<size_t>(i));
  std::lock_guard lk(node.mu);
  return node.alive;
}

ClusterTestbed::~ClusterTestbed() {
  // The sharded client may still hold abandoned hedge attempts against
  // these nodes; destroy it (joins them) before the serve loops exit.
  // Any HealthMonitor on the probe clients must already be stopped by
  // its owner (declare the monitor after the testbed).
  sharded_.reset();
  for (auto& node : nodes_) {
    node->client.reset();
    node->probe.reset();
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    KillServer(static_cast<int>(i));
  }
}

Testbed::~Testbed() {
  // Dropping the clients closes their transports; the server loops see
  // the close and exit.
  ndp_client_.reset();
  remote_store_.reset();
  store_rpc_client_.reset();
  ndp_rpc_client_.reset();
  for (std::thread& t : server_threads_) {
    t.join();
  }
}

}  // namespace vizndp::bench_util
