#include "bench_util/stats.h"

#include <algorithm>
#include <cmath>

namespace vizndp::bench_util {

Summary Summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0;
  for (const double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (const double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace vizndp::bench_util
