// Timing utilities for the reproduction benches: a wall-clock stopwatch,
// summary statistics over repetitions, and the combined real+virtual
// load timer that implements the paper's "data load time" metric on the
// emulated testbed (measured compute + modeled I/O; see DESIGN.md).
#pragma once

#include <chrono>
#include <vector>

#include "net/link_model.h"
#include "storage/ssd_model.h"

namespace vizndp::bench_util {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct Summary {
  double mean = 0, min = 0, max = 0, stddev = 0;
  size_t count = 0;
};

Summary Summarize(const std::vector<double>& samples);

// Measures one load operation: real seconds on the calling thread plus
// virtual seconds charged to the link and SSD models in the interval.
class LoadTimer {
 public:
  LoadTimer(const net::SimulatedLink& link, const storage::SsdModel& ssd)
      : link_(link),
        ssd_(ssd),
        link0_(link.virtual_seconds()),
        ssd0_(ssd.virtual_seconds()),
        bytes0_(link.bytes_transferred()) {}

  struct Result {
    double total_s = 0;    // real + virtual
    double real_s = 0;     // measured compute (decompress, filter, copy)
    double network_s = 0;  // modeled link time
    double storage_s = 0;  // modeled SSD/MinIO time
    std::uint64_t network_bytes = 0;
  };

  Result Stop() const {
    Result r;
    r.real_s = clock_.Seconds();
    r.network_s = link_.virtual_seconds() - link0_;
    r.storage_s = ssd_.virtual_seconds() - ssd0_;
    r.network_bytes = link_.bytes_transferred() - bytes0_;
    r.total_s = r.real_s + r.network_s + r.storage_s;
    return r;
  }

 private:
  const net::SimulatedLink& link_;
  const storage::SsdModel& ssd_;
  Stopwatch clock_;
  double link0_;
  double ssd0_;
  std::uint64_t bytes0_;
};

}  // namespace vizndp::bench_util
