// Emulated two-node testbed (paper Fig. 11) on one machine:
//
//   [storage node]                          [client node]
//   object store  <- SsdModel charges       VndReader over RemoteObjectStore
//   rpc::Server serving store.* and ndp.*   (baseline path), or
//   NdpServer (pre-filter)                  NdpClient (post-filter path)
//                \________ SimulatedLink charges every frame ________/
//
// Both paths use the same storage software stack (object store + SSD
// model); the only difference — exactly as in the paper — is whether the
// full array or the pre-filtered selection crosses the link.
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "cluster/sharded_client.h"
#include "ndp/ndp_client.h"
#include "net/fault.h"
#include "net/reconnect.h"
#include "ndp/ndp_server.h"
#include "rpc/server.h"
#include "bench_util/stats.h"
#include "storage/fault_store.h"
#include "storage/local_store.h"
#include "storage/memory_store.h"
#include "storage/remote_store.h"
#include "storage/scrubber.h"

namespace vizndp::bench_util {

struct TestbedConfig {
  net::LinkConfig link;
  storage::SsdConfig ssd;
  std::string bucket = "data";
  // Default: in-memory store (timing comes from SsdModel either way).
  // Set to a directory to exercise the real filesystem path.
  std::filesystem::path disk_root;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // Direct (un-modeled, un-faulted) access for pre-populating datasets.
  storage::ObjectStore& store() { return *store_; }
  const std::string& bucket() const { return config_.bucket; }

  // Disk-fault handle on the storage node's store: every server-side
  // read (NdpServer gateway, store.* RPC handlers) goes through this
  // wrapper, so scripted EIO/short/rot faults hit exactly where a bad
  // device would. store() bypasses it for test setup.
  storage::FaultInjectingStore& store_fault() { return *fault_store_; }

  // Client-side gateway: every object byte crosses the simulated link
  // (the paper's baseline: s3fs on the client, MinIO remote).
  storage::FileGateway RemoteGateway() {
    return storage::FileGateway(*remote_store_, config_.bucket);
  }

  // Storage-side gateway: object reads stay local (the NDP setup).
  storage::FileGateway LocalGateway() {
    return storage::FileGateway(*fault_store_, config_.bucket);
  }

  ndp::NdpClient& ndp_client() { return *ndp_client_; }
  std::shared_ptr<ndp::NdpClient> ndp_client_ptr() { return ndp_client_; }

  // Opens one more in-proc connection to the storage node's RPC server
  // and serves it on its own thread. Fault tests wrap the returned
  // client-side transport in decorators (FaultInjectingTransport) before
  // handing it to an rpc::Client.
  net::TransportPtr ConnectToServer();

  net::SimulatedLink& link() { return link_; }
  storage::SsdModel& ssd() { return ssd_; }

  // The storage node's RPC server — overload/tracing tests flip its
  // memory budget and read its health table mid-run.
  rpc::Server& rpc_server() { return rpc_server_; }

  // The storage node's NDP pre-filter server (owns the ndp_select
  // latency registry the observability benches count against).
  ndp::NdpServer& ndp_server() { return *ndp_server_; }

  LoadTimer StartLoadTimer() const { return LoadTimer(link_, ssd_); }

 private:
  TestbedConfig config_;
  net::SimulatedLink link_;
  storage::SsdModel ssd_;
  std::shared_ptr<storage::ObjectStore> store_;
  std::unique_ptr<storage::FaultInjectingStore> fault_store_;
  rpc::Server rpc_server_;
  std::unique_ptr<ndp::NdpServer> ndp_server_;
  std::vector<std::thread> server_threads_;
  std::shared_ptr<rpc::Client> store_rpc_client_;
  std::shared_ptr<rpc::Client> ndp_rpc_client_;
  std::unique_ptr<storage::RemoteObjectStore> remote_store_;
  std::shared_ptr<ndp::NdpClient> ndp_client_;
};

// Emulated N-node serving tier for the sharded experiments: N
// independent rpc::Server+NdpServer nodes over one shared object store
// (every node is a full replica, the ShardMap invariant), one in-proc
// connection per node, and a ShardedNdpClient fanning out over them.
// Mirrors Testbed's wiring per node so single-node and sharded runs
// differ only in topology.
//
// Channels are self-healing: every client connection goes through a
// net::ReconnectingTransport whose factory dials the node's *current*
// rpc::Server (throwing PeerClosedError while the node is down), so
// KillServer → RestartServer round-trips without rebuilding clients —
// the next call after a restart just redials. Each node additionally
// exposes a dedicated probe client (for a cluster::HealthMonitor; stop
// the monitor before destroying the testbed) and a persistent
// FaultInjectingTransport handle wrapped around its data channel (for
// the chaos harness to script delays/corruption mid-run).
struct ClusterTestbedConfig {
  int servers = 3;
  int replicas = 2;
  net::LinkConfig link;
  storage::SsdConfig ssd;
  std::string bucket = "data";
  // Per-server client knobs (timeouts, retry) — hedging needs a finite
  // call_timeout so abandoned losers unwind.
  ndp::NdpClientOptions client_options;
  cluster::ShardedClientOptions sharded;
  // Storage retry ladder every node's gateway runs under. Chaos
  // schedules raise max_attempts so scripted EIO storms sized to
  // max_attempts-1 are guaranteed to heal in place.
  net::RetryPolicy store_retry = storage::DefaultStoreRetryPolicy();
  // Optional per-connection transport decorator (fault injection): wraps
  // server `i`'s client-side transport before the rpc::Client sees it.
  std::function<net::TransportPtr(net::TransportPtr, int server)> decorate;
};

class ClusterTestbed {
 public:
  explicit ClusterTestbed(ClusterTestbedConfig config = {});
  ~ClusterTestbed();

  ClusterTestbed(const ClusterTestbed&) = delete;
  ClusterTestbed& operator=(const ClusterTestbed&) = delete;

  // The shared store, for pre-populating datasets (visible on all
  // nodes). Bypasses the fault wrapper: chaos uses it to plant rotted
  // bytes and to issue the clean repair re-Put.
  storage::ObjectStore& store() { return *store_; }
  const std::string& bucket() const { return config_.bucket; }

  // Shared disk-fault handle: every node's gateway reads the store
  // through this wrapper, so one scripted fault storm hits the whole
  // tier exactly like a failing shared backend would.
  storage::FaultInjectingStore& store_fault() { return *fault_store_; }

  // Storage-side gateway (same data every node serves); tests use it for
  // the baseline-fallback rung and single-server reference runs.
  storage::FileGateway LocalGateway() {
    return storage::FileGateway(*fault_store_, config_.bucket,
                                config_.store_retry);
  }

  int server_count() const { return config_.servers; }
  rpc::Server& rpc_server(int i) { return *nodes_.at(size_t(i))->rpc; }
  ndp::NdpServer& ndp_server(int i) { return *nodes_.at(size_t(i))->ndp; }

  // Node i's quarantine set (fed by its scrubber, consulted by its
  // bricked pre-filter). Lives in the Node, not the NdpServer: a
  // restart keeps what the previous incarnation learned about bad
  // bricks, like a quarantine file surviving a reboot.
  storage::QuarantineSet& quarantine(int i) {
    return nodes_.at(static_cast<size_t>(i))->quarantine;
  }

  // Node i's scrubber. Not started by default — chaos and tests drive
  // passes deterministically with RunPassNow(); call Start() for the
  // background cadence.
  storage::Scrubber& scrubber(int i) {
    return *nodes_.at(static_cast<size_t>(i))->scrub;
  }

  // Direct client to one node (reference fetches). Reconnecting: usable
  // across kill/restart cycles of the node.
  std::shared_ptr<ndp::NdpClient> server_client(int i) {
    return nodes_.at(static_cast<size_t>(i))->client;
  }

  // Dedicated health-probe connection to node `i` — never shared with
  // data fetches and never touched by chaos fault scripts, so a
  // HealthMonitor sees the node's real state.
  std::shared_ptr<ndp::NdpClient> probe_client(int i) {
    return nodes_.at(static_cast<size_t>(i))->probe;
  }

  // Persistent fault handle on node `i`'s data channel; survives
  // kill/restart cycles (it wraps the reconnecting transport, not one
  // connection).
  net::FaultInjectingTransport& fault(int i) {
    return *nodes_.at(static_cast<size_t>(i))->fault;
  }

  // A fresh dedicated client to node `i` over its own reconnecting
  // channel — how a FleetScraper gets per-node scrape connections that
  // never share a transport with the data path. When `fault` is
  // non-null it receives a fault handle wrapped around this channel
  // (owned by the returned client), so tests can slow one node's scrape
  // RTT without touching its serving.
  std::shared_ptr<ndp::NdpClient> NewNodeClient(
      int i, net::FaultInjectingTransport** fault = nullptr);

  std::shared_ptr<cluster::ShardedNdpClient> sharded_client() {
    return sharded_;
  }

  // Drains node `i`, exits and joins its serve loops: subsequent calls
  // to it fail with PeerClosedError and the sharded client fails over.
  void KillServer(int i);

  // Brings a killed node back as a fresh incarnation (new rpc::Server +
  // NdpServer with a new node_id) over the same shared store — restarts
  // lose no data, exactly like a storage node rebooting over its disks.
  void RestartServer(int i);

  bool alive(int i);

 private:
  struct Node {
    std::mutex mu;  // guards rpc/ndp/alive/serve_threads across redials
    storage::QuarantineSet quarantine;  // survives restarts; declared
                                        // before rpc/ndp/scrub so every
                                        // consumer dies before it does
    std::shared_ptr<rpc::Server> rpc;
    std::shared_ptr<ndp::NdpServer> ndp;
    std::unique_ptr<storage::Scrubber> scrub;
    bool alive = true;
    std::vector<std::thread> serve_threads;
    net::FaultInjectingTransport* fault = nullptr;  // owned by `client`
    std::shared_ptr<ndp::NdpClient> client;
    std::shared_ptr<ndp::NdpClient> probe;
  };

  // (Re)creates node i's servers over the shared store; node.mu held.
  void StartNodeLocked(Node& node);
  // Transport factory dialing node i's current server; `decorated`
  // applies config_.decorate to the new connection (data channels only).
  net::TransportFactory DialFactory(int i, bool decorated);

  ClusterTestbedConfig config_;
  net::SimulatedLink link_;
  storage::SsdModel ssd_;
  std::shared_ptr<storage::ObjectStore> store_;
  std::unique_ptr<storage::FaultInjectingStore> fault_store_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::shared_ptr<cluster::ShardedNdpClient> sharded_;
};

}  // namespace vizndp::bench_util
