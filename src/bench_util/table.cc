#include "bench_util/table.h"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace vizndp::bench_util {

void Table::AddRow(std::vector<std::string> cells) {
  VIZNDP_CHECK_MSG(cells.size() == headers_.size(),
                   "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&] {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << "+" << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " ";
    }
    os << "|\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::WriteCsv(const std::string& path) const {
  std::ofstream os(path);
  VIZNDP_CHECK_MSG(os.good(), "cannot open " + path);
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    return out + "\"";
  };
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << escape(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << escape(row[c]);
    }
    os << "\n";
  }
}

std::string FormatSeconds(double s) {
  std::ostringstream os;
  if (s < 1e-3) {
    os << std::fixed << std::setprecision(1) << s * 1e6 << "us";
  } else if (s < 1.0) {
    os << std::fixed << std::setprecision(2) << s * 1e3 << "ms";
  } else {
    os << std::fixed << std::setprecision(2) << s << "s";
  }
  return os.str();
}

std::string FormatBytes(std::uint64_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (bytes >= 1ull << 30) {
    os << static_cast<double>(bytes) / (1ull << 30) << "GiB";
  } else if (bytes >= 1ull << 20) {
    os << static_cast<double>(bytes) / (1ull << 20) << "MiB";
  } else if (bytes >= 1ull << 10) {
    os << static_cast<double>(bytes) / (1ull << 10) << "KiB";
  } else {
    os << bytes << "B";
  }
  return os.str();
}

std::string FormatRatio(double r) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(r >= 100 ? 0 : (r >= 10 ? 1 : 2)) << r
     << "x";
  return os.str();
}

std::string FormatPermille(double pm) {
  std::ostringstream os;
  if (pm < 0.01) {
    os << std::scientific << std::setprecision(1) << pm << "‰";
  } else {
    os << std::fixed << std::setprecision(pm < 1 ? 3 : 2) << pm << "‰";
  }
  return os.str();
}

std::string ResultsDir() {
  const std::filesystem::path dir = "results";
  std::filesystem::create_directories(dir);
  return dir.string();
}

}  // namespace vizndp::bench_util
