#include "common/hexdump.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace vizndp {

std::string HexDump(ByteSpan data, size_t max_bytes) {
  std::ostringstream os;
  const size_t n = std::min(data.size(), max_bytes);
  char line[128];
  for (size_t off = 0; off < n; off += 16) {
    int pos = std::snprintf(line, sizeof(line), "%08zx  ", off);
    for (size_t i = 0; i < 16; ++i) {
      if (off + i < n) {
        pos += std::snprintf(line + pos, sizeof(line) - pos, "%02x ",
                             data[off + i]);
      } else {
        pos += std::snprintf(line + pos, sizeof(line) - pos, "   ");
      }
      if (i == 7) line[pos++] = ' ';
    }
    pos += std::snprintf(line + pos, sizeof(line) - pos, " |");
    for (size_t i = 0; i < 16 && off + i < n; ++i) {
      const Byte b = data[off + i];
      line[pos++] = std::isprint(b) ? static_cast<char>(b) : '.';
    }
    line[pos++] = '|';
    line[pos] = '\0';
    os << line << "\n";
  }
  if (data.size() > max_bytes) {
    os << "... (" << data.size() - max_bytes << " more bytes)\n";
  }
  return os.str();
}

}  // namespace vizndp
