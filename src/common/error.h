// Error handling used across the library.
//
// Fatal, non-recoverable misuse (corrupt stream, protocol violation,
// out-of-range argument) throws vizndp::Error. Hot paths use
// VIZNDP_CHECK so the failure message carries the failed expression.
#pragma once

#include <stdexcept>
#include <string>

namespace vizndp {

class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

// Corrupt or truncated encoded data (codec, msgpack, RPC framing).
class DecodeError : public Error {
 public:
  using Error::Error;
};

// Stored data failed an integrity check (per-brick or whole-blob CRC,
// size cross-check). Subtypes DecodeError so generic corrupt-input catch
// sites keep working, but stays distinguishable: corruption is
// *recoverable* (re-read the brick, fall back to the whole blob, fall
// back to the baseline path) where ordinary decode failures are not.
class CorruptDataError : public DecodeError {
 public:
  using DecodeError::DecodeError;
};

// I/O failures from the object store / filesystem layer.
class IoError : public Error {
 public:
  using Error::Error;
};

// An I/O failure expected to heal on retry of the *same* operation
// (EIO from a flaky device, a short read racing a writer, an injected
// transient fault). Subtypes IoError so generic catch sites keep
// working, but the storage retry ladder (FileGateway) catches exactly
// this type and retries with seeded backoff, where a plain IoError is
// permanent — missing object, exhausted retries — and must enter the
// recovery ladder instead.
class TransientIoError : public IoError {
 public:
  using IoError::IoError;
};

// RPC-level failures (unknown method, transport closed, bad reply).
class RpcError : public Error {
 public:
  using Error::Error;
};

// The server shed the request before executing it (admission control:
// too many in-flight requests or the memory budget is exhausted).
// Subtypes RpcError — it *is* a server-reported condition — but unlike
// other RpcErrors it is always safe to retry, even for non-idempotent
// calls, because the handler never ran.
class BusyError : public RpcError {
 public:
  using RpcError::RpcError;
};

// A blocking operation (transport receive, RPC call) ran past its
// deadline. Distinct from PeerClosedError: the peer may still be alive,
// just slow — callers decide whether to retry, reconnect, or fall back.
class TimeoutError : public Error {
 public:
  using Error::Error;
};

// The remote endpoint closed the connection (clean shutdown, EPIPE, or
// ECONNRESET). Subtypes IoError so pre-existing catch sites keep working.
class PeerClosedError : public IoError {
 public:
  using IoError::IoError;
};

// A streaming reply stopped making progress: the per-chunk progress
// deadline elapsed with no new chunk (distinct from the overall call
// deadline — a healthy stream of many chunks may legitimately outlive
// one call timeout). Subtypes TimeoutError so deadline catch sites keep
// working; streaming clients catch exactly this type to resume from the
// last acknowledged cursor instead of restarting the fetch.
class StreamStallError : public TimeoutError {
 public:
  using TimeoutError::TimeoutError;
};

[[noreturn]] void ThrowError(const char* file, int line, const char* expr,
                             const std::string& message);

}  // namespace vizndp

#define VIZNDP_CHECK(expr)                                       \
  do {                                                           \
    if (!(expr)) {                                               \
      ::vizndp::ThrowError(__FILE__, __LINE__, #expr, "");       \
    }                                                            \
  } while (0)

#define VIZNDP_CHECK_MSG(expr, msg)                              \
  do {                                                           \
    if (!(expr)) {                                               \
      ::vizndp::ThrowError(__FILE__, __LINE__, #expr, (msg));    \
    }                                                            \
  } while (0)
