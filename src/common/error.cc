#include "common/error.h"

#include <sstream>

namespace vizndp {

void ThrowError(const char* file, int line, const char* expr,
                const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace vizndp
