// Debug helper: render a byte range as a classic offset/hex/ascii dump.
#pragma once

#include <string>

#include "common/bytes.h"

namespace vizndp {

// At most `max_bytes` are rendered; longer inputs end with an elision line.
std::string HexDump(ByteSpan data, size_t max_bytes = 256);

}  // namespace vizndp
