// Lock-free accumulator of virtual (modeled) seconds. The emulated
// testbed mixes measured CPU time with modeled I/O time (network link,
// SSD path); cost models accumulate the modeled part here.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace vizndp {

class AtomicSeconds {
 public:
  void Add(double dt) {
    std::uint64_t expected = bits_.load(std::memory_order_relaxed);
    for (;;) {
      const double updated = std::bit_cast<double>(expected) + dt;
      if (bits_.compare_exchange_weak(expected,
                                      std::bit_cast<std::uint64_t>(updated),
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  double Get() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void Reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  // Stores the bit pattern of a double; zero bits == 0.0.
  std::atomic<std::uint64_t> bits_{0};
};

}  // namespace vizndp
