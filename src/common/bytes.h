// Byte-buffer primitives shared by every subsystem.
//
// The whole stack (codecs, msgpack, RPC, object store) moves opaque byte
// ranges around; this header pins down the vocabulary types so modules
// agree on what a "buffer" is without copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

namespace vizndp {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using ByteSpan = std::span<const Byte>;
using MutableByteSpan = std::span<Byte>;

// View a trivially-copyable array as raw bytes (used when hashing,
// compressing, or shipping typed payloads).
template <typename T>
ByteSpan AsBytes(std::span<const T> data) {
  return ByteSpan(reinterpret_cast<const Byte*>(data.data()),
                  data.size() * sizeof(T));
}

template <typename T>
ByteSpan AsBytes(const std::vector<T>& data) {
  return AsBytes(std::span<const T>(data));
}

inline ByteSpan AsBytes(std::string_view s) {
  return ByteSpan(reinterpret_cast<const Byte*>(s.data()), s.size());
}

inline std::string_view AsStringView(ByteSpan b) {
  return std::string_view(reinterpret_cast<const char*>(b.data()), b.size());
}

inline Bytes ToBytes(std::string_view s) {
  const auto span = AsBytes(s);
  return Bytes(span.begin(), span.end());
}

// Reinterpret a byte buffer as a vector of T. Size must divide evenly.
template <typename T>
std::vector<T> BytesTo(ByteSpan bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> out(bytes.size() / sizeof(T));
  std::memcpy(out.data(), bytes.data(), out.size() * sizeof(T));
  return out;
}

// Little-endian scalar load/store. All on-disk and on-wire formats in this
// project are explicitly little-endian.
template <typename T>
void StoreLE(T value, Byte* dst) {
  static_assert(std::is_integral_v<T>);
  for (size_t i = 0; i < sizeof(T); ++i) {
    dst[i] = static_cast<Byte>(static_cast<std::make_unsigned_t<T>>(value) >>
                               (8 * i));
  }
}

template <typename T>
T LoadLE(const Byte* src) {
  static_assert(std::is_integral_v<T>);
  std::make_unsigned_t<T> v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::make_unsigned_t<T>>(src[i]) << (8 * i);
  }
  return static_cast<T>(v);
}

template <typename T>
void AppendLE(T value, Bytes& out) {
  const size_t old = out.size();
  out.resize(old + sizeof(T));
  StoreLE(value, out.data() + old);
}

}  // namespace vizndp
