#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "obs/context.h"
#include "obs/windowed.h"

namespace vizndp::obs {

Registry::~Registry() = default;

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  VIZNDP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be ascending");
}

void Histogram::Observe(double v) {
  // lower_bound keeps the upper bound *inclusive*: v == bounds_[i] lands
  // in bucket i, matching the "le" convention snapshots advertise.
  const auto i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seen = count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  // Exemplar: only observations that beat the running max take the lock,
  // so steady-state traffic pays a single relaxed load here. `seen == 0`
  // forces the very first observation through even when v <= 0.
  if (v >= max_.load(std::memory_order_relaxed) || seen == 0) {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    if (!has_exemplar_ || v >= exemplar_value_) {
      has_exemplar_ = true;
      exemplar_value_ = v;
      exemplar_trace_ = CurrentTraceContext().trace_id;
      max_.store(v, std::memory_order_relaxed);
    }
  }
}

std::uint64_t Histogram::bucket(size_t i) const {
  VIZNDP_CHECK_MSG(i < buckets_.size(), "histogram bucket out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::exemplar_value() const {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  return exemplar_value_;
}

std::uint64_t Histogram::exemplar_trace_id() const {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  return exemplar_trace_;
}

MetricSnapshot SnapshotHistogram(const Histogram& histogram,
                                 std::string name) {
  MetricSnapshot s;
  s.name = std::move(name);
  s.kind = MetricSnapshot::Kind::kHistogram;
  s.value = histogram.sum();
  s.count = histogram.count();
  s.bounds = histogram.bounds();
  s.buckets.reserve(s.bounds.size() + 1);
  for (size_t i = 0; i <= s.bounds.size(); ++i) {
    s.buckets.push_back(histogram.bucket(i));
  }
  s.exemplar_value = histogram.exemplar_value();
  s.exemplar_trace_id = histogram.exemplar_trace_id();
  return s;
}

double HistogramQuantile(const Histogram& histogram, double q) {
  return SnapshotQuantile(SnapshotHistogram(histogram), q);
}

double SnapshotQuantile(const MetricSnapshot& snapshot, double q) {
  if (snapshot.kind != MetricSnapshot::Kind::kHistogram ||
      snapshot.buckets.empty()) {
    return 0;
  }
  // NaN-proof clamp: std::clamp propagates NaN, and a NaN rank would
  // fall through every bucket and report the top bound.
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank against the actual bucket mass, not the advertised count — a
  // hand-merged snapshot may disagree, and an inflated count would park
  // every quantile in the overflow bucket.
  std::uint64_t total = 0;
  for (const std::uint64_t b : snapshot.buckets) total += b;
  if (total == 0) return 0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
    const std::uint64_t in_bucket = snapshot.buckets[i];
    if (in_bucket == 0) continue;
    const std::uint64_t below = cumulative;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= snapshot.bounds.size()) {
      // Overflow bucket: no upper edge to interpolate against; report the
      // last finite bound as a (known-low) estimate.
      return snapshot.bounds.empty() ? 0 : snapshot.bounds.back();
    }
    const double hi = snapshot.bounds[i];
    const double lo = i == 0 ? 0 : snapshot.bounds[i - 1];
    const double frac =
        (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return snapshot.bounds.empty() ? 0 : snapshot.bounds.back();
}

void ParseCanonicalName(const std::string& canonical, std::string* base,
                        Labels* labels) {
  labels->clear();
  const size_t brace = canonical.find('{');
  if (brace == std::string::npos || canonical.back() != '}') {
    *base = canonical;
    return;
  }
  *base = canonical.substr(0, brace);
  const std::string body =
      canonical.substr(brace + 1, canonical.size() - brace - 2);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string pair = body.substr(pos, comma - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      labels->emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    }
    pos = comma + 1;
  }
}

const char* MetricKindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "counter";
}

MetricSnapshot::Kind MetricKindFromName(std::string_view name) {
  if (name == "gauge") return MetricSnapshot::Kind::kGauge;
  if (name == "histogram") return MetricSnapshot::Kind::kHistogram;
  return MetricSnapshot::Kind::kCounter;
}

const MetricSnapshot* FindMetric(const std::vector<MetricSnapshot>& snapshot,
                                 const std::string& name) {
  for (const MetricSnapshot& s : snapshot) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string Registry::CanonicalName(const std::string& name,
                                    const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first + "=" + sorted[i].second;
  }
  out += "}";
  return out;
}

Counter& Registry::GetCounter(const std::string& name, const Labels& labels) {
  const std::string key = CanonicalName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name, const Labels& labels) {
  const std::string key = CanonicalName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds,
                                  const Labels& labels) {
  const std::string key = CanonicalName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

WindowedHistogram& Registry::GetWindowedHistogram(
    const std::string& name, std::vector<double> bounds, const Labels& labels,
    const WindowedHistogramOptions& options) {
  const std::string key = CanonicalName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = windowed_[key];
  if (!slot) {
    slot = std::make_shared<WindowedHistogram>(std::move(bounds), options);
  }
  return *slot;
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.value = static_cast<double>(counter->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.value = gauge->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.value = hist->sum();
    s.count = hist->count();
    s.bounds = hist->bounds();
    s.buckets.reserve(s.bounds.size() + 1);
    for (size_t i = 0; i <= s.bounds.size(); ++i) {
      s.buckets.push_back(hist->bucket(i));
    }
    s.exemplar_value = hist->exemplar_value();
    s.exemplar_trace_id = hist->exemplar_trace_id();
    out.push_back(std::move(s));
  }
  for (const auto& [name, wh] : windowed_) {
    out.push_back(SnapshotHistogram(wh->cumulative(), name));
    out.push_back(wh->WindowSnapshot(WindowedName(name)));
  }
  return out;
}

std::string SnapshotToText(const std::vector<MetricSnapshot>& snapshot) {
  std::ostringstream os;
  for (const MetricSnapshot& s : snapshot) {
    os << s.name << " ";
    if (s.kind == MetricSnapshot::Kind::kHistogram) {
      os << "count=" << s.count << " sum=" << s.value;
      if (s.window_seconds > 0) os << " window=" << s.window_seconds << "s";
      if (s.count > 0) {
        os << " p50=" << SnapshotQuantile(s, 0.50)
           << " p95=" << SnapshotQuantile(s, 0.95)
           << " p99=" << SnapshotQuantile(s, 0.99);
        if (s.exemplar_trace_id != 0) {
          os << " exemplar=" << s.exemplar_value << "@"
             << TraceIdHex(s.exemplar_trace_id);
        }
      }
    } else {
      os << s.value;
    }
    os << "\n";
  }
  return os.str();
}

std::string SnapshotToJson(const std::vector<MetricSnapshot>& snapshot) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const MetricSnapshot& s = snapshot[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << JsonEscape(s.name) << "\",\"kind\":\""
       << MetricKindName(s.kind) << "\",\"value\":" << s.value;
    if (s.kind == MetricSnapshot::Kind::kHistogram) {
      if (s.window_seconds > 0) {
        os << ",\"window_seconds\":" << s.window_seconds;
      }
      os << ",\"count\":" << s.count << ",\"bounds\":[";
      for (size_t b = 0; b < s.bounds.size(); ++b) {
        if (b > 0) os << ",";
        os << s.bounds[b];
      }
      os << "],\"buckets\":[";
      for (size_t b = 0; b < s.buckets.size(); ++b) {
        if (b > 0) os << ",";
        os << s.buckets[b];
      }
      os << "]";
      if (s.count > 0) {
        os << ",\"p50\":" << SnapshotQuantile(s, 0.50)
           << ",\"p95\":" << SnapshotQuantile(s, 0.95)
           << ",\"p99\":" << SnapshotQuantile(s, 0.99);
      }
      if (s.exemplar_trace_id != 0) {
        os << ",\"exemplar\":{\"value\":" << s.exemplar_value
           << ",\"trace_id\":\"" << TraceIdHex(s.exemplar_trace_id) << "\"}";
      }
    }
    os << "}";
  }
  os << "]";
  return os.str();
}

namespace {

// Prometheus-quoted label block: {k="v",...}; empty string for no labels.
std::string PromLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + JsonEscape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// Same, with one extra label appended (used for _bucket{...,le="..."}).
std::string PromLabelsWith(const Labels& labels, const std::string& key,
                           const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return PromLabels(extended);
}

std::string PromDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string SnapshotToProm(const std::vector<MetricSnapshot>& snapshot) {
  // Group series by family (base name) in first-seen order so # TYPE is
  // emitted exactly once per family even when the input interleaves
  // families — merged fleet snapshots sort canonical names, and
  // "foo_window{...}" sorts *between* "foo" and "foo{...}".
  std::vector<std::string> bases(snapshot.size());
  std::vector<Labels> labelsets(snapshot.size());
  std::vector<std::string> family_order;
  std::map<std::string, std::vector<size_t>> by_family;
  for (size_t i = 0; i < snapshot.size(); ++i) {
    ParseCanonicalName(snapshot[i].name, &bases[i], &labelsets[i]);
    auto& members = by_family[bases[i]];
    if (members.empty()) family_order.push_back(bases[i]);
    members.push_back(i);
  }
  std::ostringstream os;
  for (const std::string& family : family_order) {
    const std::vector<size_t>& members = by_family[family];
    os << "# TYPE " << family << " "
       << MetricKindName(snapshot[members.front()].kind) << "\n";
    for (const size_t idx : members) {
      const MetricSnapshot& s = snapshot[idx];
      const std::string& base = bases[idx];
      const Labels& labels = labelsets[idx];
      switch (s.kind) {
        case MetricSnapshot::Kind::kCounter:
        case MetricSnapshot::Kind::kGauge:
          os << base << PromLabels(labels) << " " << s.value << "\n";
          break;
        case MetricSnapshot::Kind::kHistogram: {
          std::uint64_t cumulative = 0;
          for (size_t b = 0; b < s.buckets.size(); ++b) {
            cumulative += s.buckets[b];
            const std::string le = b < s.bounds.size()
                                       ? PromDouble(s.bounds[b])
                                       : std::string("+Inf");
            os << base << "_bucket" << PromLabelsWith(labels, "le", le) << " "
               << cumulative << "\n";
          }
          os << base << "_sum" << PromLabels(labels) << " " << s.value
             << "\n";
          os << base << "_count" << PromLabels(labels) << " " << s.count
             << "\n";
          if (s.exemplar_trace_id != 0) {
            // Classic text exposition has no exemplar syntax; keep the
            // trace link scrape-visible as a comment.
            os << "# EXEMPLAR " << base << PromLabels(labels) << " value="
               << s.exemplar_value << " trace_id="
               << TraceIdHex(s.exemplar_trace_id) << "\n";
          }
          break;
        }
      }
    }
  }
  return os.str();
}

std::string FormatSnapshot(const std::vector<MetricSnapshot>& snapshot,
                           const std::string& format) {
  if (format.empty() || format == "text") return SnapshotToText(snapshot);
  if (format == "json") return SnapshotToJson(snapshot);
  if (format == "prom") return SnapshotToProm(snapshot);
  throw Error("unknown metrics format: " + format);
}

Registry& DefaultRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

std::vector<double> ExponentialBounds(double start, double factor, int count) {
  VIZNDP_CHECK_MSG(start > 0 && factor > 1 && count >= 1,
                   "invalid exponential bucket spec");
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> LatencyBounds() { return ExponentialBounds(1e-6, 4, 13); }

namespace {
std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}
}  // namespace

double WallTimeSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessStart())
      .count();
}

void StampSnapshot(std::vector<MetricSnapshot>& snapshot) {
  MetricSnapshot wall;
  wall.name = "process_wall_time_seconds";
  wall.kind = MetricSnapshot::Kind::kGauge;
  wall.value = WallTimeSeconds();
  snapshot.push_back(std::move(wall));
  MetricSnapshot up;
  up.name = "process_uptime_seconds";
  up.kind = MetricSnapshot::Kind::kGauge;
  up.value = ProcessUptimeSeconds();
  snapshot.push_back(std::move(up));
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace vizndp::obs
