#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace vizndp::obs {

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  VIZNDP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be ascending");
}

void Histogram::Observe(double v) {
  // lower_bound keeps the upper bound *inclusive*: v == bounds_[i] lands
  // in bucket i, matching the "le" convention snapshots advertise.
  const auto i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket(size_t i) const {
  VIZNDP_CHECK_MSG(i < buckets_.size(), "histogram bucket out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

const char* MetricKindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "counter";
}

MetricSnapshot::Kind MetricKindFromName(std::string_view name) {
  if (name == "gauge") return MetricSnapshot::Kind::kGauge;
  if (name == "histogram") return MetricSnapshot::Kind::kHistogram;
  return MetricSnapshot::Kind::kCounter;
}

const MetricSnapshot* FindMetric(const std::vector<MetricSnapshot>& snapshot,
                                 const std::string& name) {
  for (const MetricSnapshot& s : snapshot) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string Registry::CanonicalName(const std::string& name,
                                    const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first + "=" + sorted[i].second;
  }
  out += "}";
  return out;
}

Counter& Registry::GetCounter(const std::string& name, const Labels& labels) {
  const std::string key = CanonicalName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name, const Labels& labels) {
  const std::string key = CanonicalName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds,
                                  const Labels& labels) {
  const std::string key = CanonicalName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.value = static_cast<double>(counter->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.value = gauge->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.value = hist->sum();
    s.count = hist->count();
    s.bounds = hist->bounds();
    s.buckets.reserve(s.bounds.size() + 1);
    for (size_t i = 0; i <= s.bounds.size(); ++i) {
      s.buckets.push_back(hist->bucket(i));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string SnapshotToText(const std::vector<MetricSnapshot>& snapshot) {
  std::ostringstream os;
  for (const MetricSnapshot& s : snapshot) {
    os << s.name << " ";
    if (s.kind == MetricSnapshot::Kind::kHistogram) {
      os << "count=" << s.count << " sum=" << s.value;
    } else {
      os << s.value;
    }
    os << "\n";
  }
  return os.str();
}

std::string SnapshotToJson(const std::vector<MetricSnapshot>& snapshot) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const MetricSnapshot& s = snapshot[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << JsonEscape(s.name) << "\",\"kind\":\""
       << MetricKindName(s.kind) << "\",\"value\":" << s.value;
    if (s.kind == MetricSnapshot::Kind::kHistogram) {
      os << ",\"count\":" << s.count << ",\"bounds\":[";
      for (size_t b = 0; b < s.bounds.size(); ++b) {
        if (b > 0) os << ",";
        os << s.bounds[b];
      }
      os << "],\"buckets\":[";
      for (size_t b = 0; b < s.buckets.size(); ++b) {
        if (b > 0) os << ",";
        os << s.buckets[b];
      }
      os << "]";
    }
    os << "}";
  }
  os << "]";
  return os.str();
}

Registry& DefaultRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

std::vector<double> ExponentialBounds(double start, double factor, int count) {
  VIZNDP_CHECK_MSG(start > 0 && factor > 1 && count >= 1,
                   "invalid exponential bucket spec");
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> LatencyBounds() { return ExponentialBounds(1e-6, 4, 13); }

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace vizndp::obs
