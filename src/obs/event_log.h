// Structured per-request event journal — the decision points spans
// cannot express. A span says *how long* the second ndp.select attempt
// took; the event log says *why there was* a second attempt (the first
// one timed out), that the server shed it as busy, that a brick failed
// its CRC and was re-read, and that the client finally degraded to the
// baseline path. Every error path in the transport/RPC/NDP stack appends
// exactly one event here (tests/trace_test.cc locks that invariant).
//
// Events inherit the calling thread's TraceContext, so one fetch's whole
// decision sequence is recoverable with Events(trace_id) even when
// client and server share a process (the in-proc testbed).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vizndp::obs {

struct LogEvent {
  std::uint64_t seq = 0;       // global append order, never reused
  std::uint64_t trace_id = 0;  // 0 = not request-scoped
  std::uint64_t span_id = 0;   // innermost span at append time
  std::uint64_t ts_us = 0;     // microseconds since the log's epoch
  std::string name;            // dotted event name, e.g. "rpc.timeout"
  std::string detail;          // free-form "k=v k=v" context
};

class EventLog {
 public:
  explicit EventLog(size_t capacity = 4096);

  // Appends one event tagged with the thread's current TraceContext.
  // Always on — decision points are rare enough that the one mutex'd
  // push is noise next to the failure that triggered them.
  void Append(std::string name, std::string detail = {});

  // Oldest-first copy; trace_id 0 returns everything.
  std::vector<LogEvent> Events(std::uint64_t trace_id = 0) const;

  // Sequence number of the most recent event (0 when empty) — take it
  // as a baseline, then CountSince(name, baseline) counts the events of
  // one kind appended afterwards (and still in the ring). The chaos
  // harness audits counter deltas against these.
  std::uint64_t LastSeq() const;
  size_t CountSince(std::string_view name, std::uint64_t after_seq) const;

  void Clear();
  size_t size() const;

  // JSON array of {seq, trace_id (hex), ts, name, detail}; trace_id 0
  // exports everything.
  std::string Json(std::uint64_t trace_id = 0) const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<LogEvent> events_;
  size_t ring_next_ = 0;
  std::uint64_t next_seq_ = 1;
  std::chrono::steady_clock::time_point epoch_;
};

// Process-wide journal every instrumented layer appends to.
EventLog& GlobalEventLog();

}  // namespace vizndp::obs
