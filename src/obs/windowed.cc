#include "obs/windowed.h"

#include <algorithm>

#include "common/error.h"

namespace vizndp::obs {

WindowedHistogram::WindowedHistogram(std::vector<double> bounds,
                                     WindowedHistogramOptions options)
    : cumulative_(std::move(bounds)),
      epochs_(options.epochs),
      epoch_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
          options.epoch_duration)),
      origin_(std::chrono::steady_clock::now()),
      slots_(static_cast<size_t>(options.epochs)) {
  VIZNDP_CHECK_MSG(epochs_ >= 2, "windowed histogram needs >= 2 epochs");
  VIZNDP_CHECK_MSG(epoch_ns_.count() > 0,
                   "windowed histogram epoch duration must be positive");
  for (Epoch& slot : slots_) {
    slot.buckets = std::vector<std::atomic<std::uint64_t>>(
        cumulative_.bounds().size() + 1);
  }
}

std::uint64_t WindowedHistogram::EpochNow() const {
  const auto elapsed = std::chrono::steady_clock::now() - origin_;
  return static_cast<std::uint64_t>(elapsed / epoch_ns_) +
         bias_.load(std::memory_order_relaxed);
}

double WindowedHistogram::window_seconds() const {
  return static_cast<double>(epochs_) *
         std::chrono::duration<double>(epoch_ns_).count();
}

void WindowedHistogram::RotateTo(std::uint64_t target) const {
  if (target <= current_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(rotate_mu_);
  const std::uint64_t cur = current_.load(std::memory_order_relaxed);
  if (target <= cur) return;
  // A jump past the whole ring recycles every slot; otherwise only the
  // epochs actually crossed.
  const std::uint64_t ring = static_cast<std::uint64_t>(epochs_);
  std::uint64_t first = cur + 1;
  if (target - cur > ring) first = target - ring + 1;
  for (std::uint64_t e = first; e <= target; ++e) {
    Epoch& slot = slots_[e % ring];
    for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
    slot.id.store(e, std::memory_order_relaxed);
  }
  current_.store(target, std::memory_order_relaxed);
}

void WindowedHistogram::Observe(double v) {
  cumulative_.Observe(v);
  const std::uint64_t e = EpochNow();
  if (e != current_.load(std::memory_order_relaxed)) RotateTo(e);
  const std::vector<double>& bounds = cumulative_.bounds();
  const auto i = static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  slots_[e % static_cast<std::uint64_t>(epochs_)].buckets[i].fetch_add(
      1, std::memory_order_relaxed);
}

MetricSnapshot WindowedHistogram::WindowSnapshot(std::string name) const {
  const std::uint64_t now_e = EpochNow();
  RotateTo(now_e);  // expire stale epochs even when nobody observes
  MetricSnapshot s;
  s.name = std::move(name);
  s.kind = MetricSnapshot::Kind::kHistogram;
  s.bounds = cumulative_.bounds();
  s.buckets.assign(s.bounds.size() + 1, 0);
  s.window_seconds = window_seconds();
  const std::uint64_t ring = static_cast<std::uint64_t>(epochs_);
  const std::uint64_t oldest = now_e >= ring - 1 ? now_e - (ring - 1) : 0;
  {
    // Hold the rotation lock so a concurrent boundary-crossing cannot
    // clear a slot halfway through the sum.
    std::lock_guard<std::mutex> lock(rotate_mu_);
    for (const Epoch& slot : slots_) {
      const std::uint64_t id = slot.id.load(std::memory_order_relaxed);
      if (id < oldest || id > now_e) continue;
      for (size_t b = 0; b < slot.buckets.size(); ++b) {
        s.buckets[b] += slot.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  double sum_estimate = 0;
  for (size_t b = 0; b < s.buckets.size(); ++b) {
    s.count += s.buckets[b];
    if (s.buckets[b] == 0) continue;
    double mid;
    if (b >= s.bounds.size()) {
      mid = s.bounds.empty() ? 0 : s.bounds.back();
    } else {
      const double lo = b == 0 ? 0 : s.bounds[b - 1];
      mid = (lo + s.bounds[b]) / 2;
    }
    sum_estimate += mid * static_cast<double>(s.buckets[b]);
  }
  s.value = sum_estimate;
  return s;
}

std::uint64_t WindowedHistogram::WindowCount() const {
  return WindowSnapshot().count;
}

double WindowedHistogram::WindowQuantile(double q) const {
  return SnapshotQuantile(WindowSnapshot(), q);
}

void WindowedHistogram::AdvanceEpochsForTest(int n) {
  bias_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
  RotateTo(EpochNow());
}

std::string WindowedName(const std::string& canonical) {
  std::string base;
  Labels labels;
  ParseCanonicalName(canonical, &base, &labels);
  return Registry::CanonicalName(base + "_window", labels);
}

}  // namespace vizndp::obs
