#include "obs/merge.h"

#include <algorithm>
#include <map>
#include <utility>

namespace vizndp::obs {

namespace {

void MergeInto(MetricSnapshot& into, const MetricSnapshot& from,
               const MergeOptions& options) {
  if (from.kind != into.kind) return;  // first-merged kind wins
  switch (into.kind) {
    case MetricSnapshot::Kind::kCounter:
      into.value += from.value;
      return;
    case MetricSnapshot::Kind::kGauge: {
      GaugeMergePolicy policy = GaugeMergePolicy::kSum;
      if (options.gauge_policy) {
        std::string base;
        Labels labels;
        ParseCanonicalName(into.name, &base, &labels);
        policy = options.gauge_policy(base);
      }
      switch (policy) {
        case GaugeMergePolicy::kSum: into.value += from.value; return;
        case GaugeMergePolicy::kMax:
          into.value = std::max(into.value, from.value);
          return;
        case GaugeMergePolicy::kMin:
          into.value = std::min(into.value, from.value);
          return;
      }
      return;
    }
    case MetricSnapshot::Kind::kHistogram: {
      if (from.bounds != into.bounds ||
          from.buckets.size() != into.buckets.size()) {
        return;  // shape conflict: drop the stranger
      }
      into.value += from.value;
      into.count += from.count;
      for (size_t i = 0; i < into.buckets.size(); ++i) {
        into.buckets[i] += from.buckets[i];
      }
      // Worst observation across the fleet; trace id breaks ties so the
      // result is input-order independent.
      if (from.exemplar_value > into.exemplar_value ||
          (from.exemplar_value == into.exemplar_value &&
           from.exemplar_trace_id > into.exemplar_trace_id)) {
        into.exemplar_value = from.exemplar_value;
        into.exemplar_trace_id = from.exemplar_trace_id;
      }
      into.window_seconds = std::max(into.window_seconds, from.window_seconds);
      return;
    }
  }
}

}  // namespace

std::vector<MetricSnapshot> MergeSnapshots(
    const std::vector<std::vector<MetricSnapshot>>& sources,
    const MergeOptions& options) {
  std::map<std::string, MetricSnapshot> merged;
  for (const std::vector<MetricSnapshot>& source : sources) {
    for (const MetricSnapshot& s : source) {
      auto [it, inserted] = merged.emplace(s.name, s);
      if (!inserted) MergeInto(it->second, s, options);
    }
  }
  std::vector<MetricSnapshot> out;
  out.reserve(merged.size());
  for (auto& [name, s] : merged) out.push_back(std::move(s));
  return out;
}

std::vector<MetricSnapshot> WithLabel(std::vector<MetricSnapshot> snapshot,
                                      const std::string& key,
                                      const std::string& value) {
  for (MetricSnapshot& s : snapshot) {
    std::string base;
    Labels labels;
    ParseCanonicalName(s.name, &base, &labels);
    labels.emplace_back(key, value);
    s.name = Registry::CanonicalName(base, labels);
  }
  return snapshot;
}

GaugeMergePolicy DefaultFleetGaugePolicy(const std::string& base) {
  if (base == "process_wall_time_seconds" ||
      base == "process_uptime_seconds" || base == "rpc_mem_budget_bytes" ||
      base.find("epoch") != std::string::npos ||
      base.find("limit") != std::string::npos) {
    return GaugeMergePolicy::kMax;
  }
  return GaugeMergePolicy::kSum;
}

}  // namespace vizndp::obs
