// Snapshot merge algebra for fleet aggregation: N per-node scrapes fold
// into one fleet view. The operation is per canonical name —
// counter-sum, gauge-by-policy, bucket-wise histogram add — and, for the
// policies that are themselves commutative monoids (sum/max/min), the
// whole merge is associative, permutation-invariant, and has the empty
// snapshot as identity (property tests in tests/fleet_test.cc).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace vizndp::obs {

enum class GaugeMergePolicy { kSum, kMax, kMin };

struct MergeOptions {
  // Picks the merge policy per gauge *base* name (labels stripped);
  // null = sum everything. Sums are right for occupancy gauges
  // (inflight, parked, mem-in-use); maxima for clocks and epochs.
  std::function<GaugeMergePolicy(const std::string& base)> gauge_policy;
};

// Merges per-source snapshots into one, keyed by canonical name and
// sorted by it (so input order never shows in the output). Counters sum;
// gauges follow the policy; histograms add bucket-wise when bounds match
// (on a bounds mismatch the first-merged shape wins and the conflicting
// series is dropped — mixed-version fleets degrade, they don't throw).
// Exemplars keep the worst observation; window_seconds takes the max.
// A kind conflict under one name keeps the first-merged kind.
std::vector<MetricSnapshot> MergeSnapshots(
    const std::vector<std::vector<MetricSnapshot>>& sources,
    const MergeOptions& options = {});

// Folds one extra label into every canonical name ("x{a=b}" + node=2 ->
// "x{a=b,node=2}"), for fleet expositions that must keep per-node series
// distinguishable (the prom output of `vizndp_tool top`).
std::vector<MetricSnapshot> WithLabel(std::vector<MetricSnapshot> snapshot,
                                      const std::string& key,
                                      const std::string& value);

// The fleet default: clocks, uptimes, epochs, and limits take the max
// across nodes; everything else sums.
GaugeMergePolicy DefaultFleetGaugePolicy(const std::string& base);

}  // namespace vizndp::obs
