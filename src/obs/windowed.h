// Sliding-window histograms: a ring of bucketized epochs layered on top
// of the cumulative Histogram, so dashboards and adaptive policies read
// "the last ~10 seconds" instead of everything-since-boot (a p99 from an
// hour ago must not drown the last minute's regression). The cumulative
// series is kept unchanged for compatibility; the window exports as a
// second snapshot under `<base>_window` with window_seconds set.
//
// Concurrency model matches Histogram: the record path is relaxed
// atomics only (one extra epoch-id load + one bucket fetch_add on top of
// the cumulative observe). Rotation — clearing expired epochs when the
// clock crosses an epoch boundary — takes a mutex, but only the first
// observer past the boundary pays it. An observation racing a rotation
// may land in the epoch being recycled; the error is bounded by one
// observation per rotation and the window is an estimate by design.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace vizndp::obs {

class WindowedHistogram {
 public:
  explicit WindowedHistogram(std::vector<double> bounds,
                             WindowedHistogramOptions options = {});

  // Records into the cumulative histogram and the current epoch.
  void Observe(double v);

  // The since-boot series (exported under the plain metric name).
  const Histogram& cumulative() const { return cumulative_; }

  // Window span in seconds (epochs * epoch_duration).
  double window_seconds() const;
  const std::vector<double>& bounds() const { return cumulative_.bounds(); }

  // Sliding-window snapshot: bucket counts summed over the live epochs,
  // window_seconds set. `value` (the sum) is estimated from bucket
  // midpoints — the per-epoch ring tracks counts only.
  MetricSnapshot WindowSnapshot(std::string name = {}) const;

  // Observations currently inside the window.
  std::uint64_t WindowCount() const;

  // q-quantile over the current window (0 while the window is empty).
  double WindowQuantile(double q) const;

  // Test clock: advances the logical epoch index by `n` without waiting
  // for wall time. Tests pair this with a very long epoch_duration so
  // real time never rotates underneath them.
  void AdvanceEpochsForTest(int n);

 private:
  // One ring slot: the absolute epoch index it currently holds plus its
  // bucket counts (bounds.size() + 1, overflow last).
  struct Epoch {
    std::atomic<std::uint64_t> id{0};
    std::vector<std::atomic<std::uint64_t>> buckets;
  };

  std::uint64_t EpochNow() const;
  // Clears every epoch in (current, target] and advances current_;
  // no-op when target <= current. Snapshot calls it too (const path),
  // so expired epochs age out even on an idle histogram.
  void RotateTo(std::uint64_t target) const;

  Histogram cumulative_;
  const int epochs_;
  const std::chrono::nanoseconds epoch_ns_;
  const std::chrono::steady_clock::time_point origin_;
  std::atomic<std::uint64_t> bias_{0};  // AdvanceEpochsForTest offset
  mutable std::atomic<std::uint64_t> current_{0};
  mutable std::mutex rotate_mu_;
  mutable std::vector<Epoch> slots_;
};

// Canonical name of the window series for a cumulative canonical name:
// base gains a "_window" suffix, labels stay ("ndp_select_seconds" ->
// "ndp_select_seconds_window"; "h{a=b}" -> "h_window{a=b}").
std::string WindowedName(const std::string& canonical);

}  // namespace vizndp::obs
