#include "obs/trace.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/metrics.h"

namespace vizndp::obs {

namespace {

std::uint64_t MicrosBetween(std::chrono::steady_clock::time_point a,
                            std::chrono::steady_clock::time_point b) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity > 0 ? capacity : 1) {}

std::uint32_t Tracer::TrackIdLocked(const std::string& name) {
  for (size_t i = 0; i < track_names_.size(); ++i) {
    if (track_names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  track_names_.push_back(name);
  return static_cast<std::uint32_t>(track_names_.size() - 1);
}

std::uint32_t Tracer::ThreadTrackLocked() {
  const auto id = std::this_thread::get_id();
  const auto it = thread_tracks_.find(id);
  if (it != thread_tracks_.end()) return it->second;
  const std::uint32_t track =
      TrackIdLocked("thread-" + std::to_string(thread_tracks_.size()));
  thread_tracks_.emplace(id, track);
  return track;
}

void Tracer::SetThreadTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_tracks_[std::this_thread::get_id()] = TrackIdLocked(name);
}

void Tracer::PushLocked(TraceEvent event) {
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
  } else {
    events_[ring_next_] = std::move(event);
    ring_next_ = (ring_next_ + 1) % capacity_;
  }
}

void Tracer::Record(std::string name,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  Record(std::move(name), start, end, SpanIds{});
}

void Tracer::Record(std::string name,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end,
                    const SpanIds& ids) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  // Both endpoints truncate against the same epoch before the duration
  // is formed; flooring start and duration independently could push a
  // nested span's rounded end past its parent's by a microsecond.
  event.start_us = MicrosBetween(epoch_, start);
  const std::uint64_t end_us = MicrosBetween(epoch_, end);
  event.dur_us = end_us > event.start_us ? end_us - event.start_us : 0;
  event.trace_id = ids.trace_id;
  event.span_id = ids.span_id;
  event.parent_span_id = ids.parent_span_id;
  std::lock_guard<std::mutex> lock(mu_);
  event.track = ThreadTrackLocked();
  PushLocked(std::move(event));
}

void Tracer::Inject(const std::string& track, std::string name,
                    std::uint64_t start_us, std::uint64_t dur_us,
                    const SpanIds& ids) {
  TraceEvent event;
  event.name = std::move(name);
  event.start_us = start_us;
  event.dur_us = dur_us;
  event.trace_id = ids.trace_id;
  event.span_id = ids.span_id;
  event.parent_span_id = ids.parent_span_id;
  std::lock_guard<std::mutex> lock(mu_);
  event.track = TrackIdLocked(track);
  PushLocked(std::move(event));
}

std::vector<TraceEvent> Tracer::Linearized() const {
  std::vector<TraceEvent> out;
  const size_t n = events_.size();
  out.reserve(n);
  const size_t first = n < capacity_ ? 0 : ring_next_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(events_[(first + i) % n]);
  }
  return out;
}

namespace {

DrainedEvent ToDrained(const TraceEvent& e,
                       const std::vector<std::string>& tracks) {
  DrainedEvent d;
  d.name = e.name;
  d.track = e.track < tracks.size() ? tracks[e.track] : "thread-?";
  d.start_us = e.start_us;
  d.dur_us = e.dur_us;
  d.trace_id = e.trace_id;
  d.span_id = e.span_id;
  d.parent_span_id = e.parent_span_id;
  return d;
}

}  // namespace

std::vector<DrainedEvent> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DrainedEvent> out;
  out.reserve(events_.size());
  for (const TraceEvent& e : Linearized()) {
    out.push_back(ToDrained(e, track_names_));
  }
  events_.clear();
  ring_next_ = 0;
  return out;
}

std::vector<DrainedEvent> Tracer::Collect(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DrainedEvent> out;
  for (const TraceEvent& e : Linearized()) {
    if (e.trace_id == trace_id) out.push_back(ToDrained(e, track_names_));
  }
  return out;
}

std::vector<DrainedEvent> Tracer::Extract(std::uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DrainedEvent> out;
  std::vector<TraceEvent> rest;
  for (TraceEvent& e : Linearized()) {
    if (e.trace_id == trace_id) {
      out.push_back(ToDrained(e, track_names_));
    } else {
      rest.push_back(std::move(e));
    }
  }
  events_ = std::move(rest);
  ring_next_ = 0;
  return out;
}

std::vector<DrainedEvent> Tracer::ExtractSubtree(std::uint64_t trace_id,
                                                 std::uint64_t root_span_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<TraceEvent> all = Linearized();
  // Fixpoint over the parent relation: children End() (and thus record)
  // before their parents, so a single pass in buffer order is not enough.
  std::vector<bool> in_subtree(all.size(), false);
  std::vector<std::uint64_t> member_spans{root_span_id};
  bool grew = true;
  while (grew) {
    grew = false;
    for (size_t i = 0; i < all.size(); ++i) {
      if (in_subtree[i] || all[i].trace_id != trace_id) continue;
      if (all[i].span_id == 0) continue;
      for (const std::uint64_t parent : member_spans) {
        if (all[i].parent_span_id == parent) {
          in_subtree[i] = true;
          member_spans.push_back(all[i].span_id);
          grew = true;
          break;
        }
      }
    }
  }
  std::vector<DrainedEvent> out;
  std::vector<TraceEvent> rest;
  for (size_t i = 0; i < all.size(); ++i) {
    if (in_subtree[i]) {
      out.push_back(ToDrained(all[i], track_names_));
    } else {
      rest.push_back(all[i]);
    }
  }
  events_ = std::move(rest);
  ring_next_ = 0;
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  ring_next_ = 0;
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t Tracer::NowMicros() const {
  return MicrosBetween(epoch_, std::chrono::steady_clock::now());
}

void Tracer::WriteChromeJson(std::ostream& os) const {
  std::vector<TraceEvent> events;
  std::vector<std::string> tracks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    tracks = track_names_;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  os << "{\"traceEvents\":[";
  bool first = true;
  for (size_t i = 0; i < tracks.size(); ++i) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << i
       << ",\"args\":{\"name\":\"" << JsonEscape(tracks[i]) << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(e.name)
       << "\",\"ph\":\"X\",\"ts\":" << e.start_us << ",\"dur\":" << e.dur_us
       << ",\"pid\":1,\"tid\":" << e.track;
    if (e.trace_id != 0) {
      os << ",\"args\":{\"trace_id\":\"" << TraceIdHex(e.trace_id)
         << "\",\"span_id\":" << e.span_id << ",\"parent_span_id\":"
         << e.parent_span_id << "}";
    }
    os << "}";
  }
  os << "]}";
}

std::string Tracer::ChromeJson() const {
  std::ostringstream os;
  WriteChromeJson(os);
  return os.str();
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all users
  return *tracer;
}

Span::Span(std::string name, Tracer& tracer)
    : tracer_(tracer),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {
  const TraceContext& cur = CurrentTraceContext();
  if (cur.valid()) {
    ids_.trace_id = cur.trace_id;
    ids_.parent_span_id = cur.span_id;
    ids_.span_id = NextSpanId();
    saved_ = cur;
    TraceContext mine = cur;
    mine.span_id = ids_.span_id;
    // Install via the scoped mechanism by hand: Span outlives lexical
    // scopes awkwardly (End() may come before destruction), so it
    // restores in End() rather than a nested ScopedTraceContext.
    internal_SetCurrentTraceContext(mine);
    scoped_ = true;
  }
}

void Span::End() {
  if (ended_) return;
  ended_ = true;
  end_ = std::chrono::steady_clock::now();
  if (scoped_) {
    internal_SetCurrentTraceContext(saved_);
    scoped_ = false;
  }
  tracer_.Record(std::move(name_), start_, end_, ids_);
}

}  // namespace vizndp::obs
