#include "obs/trace.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/metrics.h"

namespace vizndp::obs {

namespace {

std::uint64_t MicrosBetween(std::chrono::steady_clock::time_point a,
                            std::chrono::steady_clock::time_point b) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity > 0 ? capacity : 1) {}

std::uint32_t Tracer::TrackIdLocked(const std::string& name) {
  for (size_t i = 0; i < track_names_.size(); ++i) {
    if (track_names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  track_names_.push_back(name);
  return static_cast<std::uint32_t>(track_names_.size() - 1);
}

std::uint32_t Tracer::ThreadTrackLocked() {
  const auto id = std::this_thread::get_id();
  const auto it = thread_tracks_.find(id);
  if (it != thread_tracks_.end()) return it->second;
  const std::uint32_t track =
      TrackIdLocked("thread-" + std::to_string(thread_tracks_.size()));
  thread_tracks_.emplace(id, track);
  return track;
}

void Tracer::SetThreadTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_tracks_[std::this_thread::get_id()] = TrackIdLocked(name);
}

void Tracer::Record(std::string name,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.start_us = MicrosBetween(epoch_, start);
  event.dur_us = MicrosBetween(start, end);
  std::lock_guard<std::mutex> lock(mu_);
  event.track = ThreadTrackLocked();
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
  } else {
    events_[ring_next_] = std::move(event);
    ring_next_ = (ring_next_ + 1) % capacity_;
  }
}

void Tracer::Inject(const std::string& track, std::string name,
                    std::uint64_t start_us, std::uint64_t dur_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.start_us = start_us;
  event.dur_us = dur_us;
  std::lock_guard<std::mutex> lock(mu_);
  event.track = TrackIdLocked(track);
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
  } else {
    events_[ring_next_] = std::move(event);
    ring_next_ = (ring_next_ + 1) % capacity_;
  }
}

std::vector<DrainedEvent> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DrainedEvent> out;
  out.reserve(events_.size());
  // Oldest first: once the ring wrapped, ring_next_ points at the oldest.
  const size_t n = events_.size();
  const size_t first = n < capacity_ ? 0 : ring_next_;
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[(first + i) % n];
    DrainedEvent d;
    d.name = e.name;
    d.track = e.track < track_names_.size() ? track_names_[e.track]
                                            : "thread-?";
    d.start_us = e.start_us;
    d.dur_us = e.dur_us;
    out.push_back(std::move(d));
  }
  events_.clear();
  ring_next_ = 0;
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  ring_next_ = 0;
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t Tracer::NowMicros() const {
  return MicrosBetween(epoch_, std::chrono::steady_clock::now());
}

void Tracer::WriteChromeJson(std::ostream& os) const {
  std::vector<TraceEvent> events;
  std::vector<std::string> tracks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    tracks = track_names_;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  os << "{\"traceEvents\":[";
  bool first = true;
  for (size_t i = 0; i < tracks.size(); ++i) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << i
       << ",\"args\":{\"name\":\"" << JsonEscape(tracks[i]) << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(e.name)
       << "\",\"ph\":\"X\",\"ts\":" << e.start_us << ",\"dur\":" << e.dur_us
       << ",\"pid\":1,\"tid\":" << e.track << "}";
  }
  os << "]}";
}

std::string Tracer::ChromeJson() const {
  std::ostringstream os;
  WriteChromeJson(os);
  return os.str();
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all users
  return *tracer;
}

}  // namespace vizndp::obs
