#include "obs/slo.h"

#include <algorithm>
#include <sstream>

namespace vizndp::obs {

namespace {

// Events <= threshold in one histogram snapshot, interpolating linearly
// inside the straddling bucket (the same model SnapshotQuantile uses, in
// the other direction).
double CountAtOrBelow(const MetricSnapshot& s, double threshold) {
  double below = 0;
  for (size_t i = 0; i < s.buckets.size(); ++i) {
    if (s.buckets[i] == 0) continue;
    if (i >= s.bounds.size()) break;  // overflow: all above any threshold
    const double hi = s.bounds[i];
    if (hi <= threshold) {
      below += static_cast<double>(s.buckets[i]);
      continue;
    }
    const double lo = i == 0 ? 0 : s.bounds[i - 1];
    if (threshold > lo && hi > lo) {
      below += static_cast<double>(s.buckets[i]) * (threshold - lo) / (hi - lo);
    }
    break;  // ascending bounds: nothing further fits
  }
  return below;
}

double BucketTotal(const MetricSnapshot& s) {
  double total = 0;
  for (const std::uint64_t b : s.buckets) total += static_cast<double>(b);
  return total;
}

// Sums a counter family (all label series of `family`) in a snapshot.
double SumCounterFamily(const std::vector<MetricSnapshot>& snapshot,
                        const std::string& family) {
  double sum = 0;
  std::string base;
  Labels labels;
  for (const MetricSnapshot& s : snapshot) {
    if (s.kind != MetricSnapshot::Kind::kCounter) continue;
    ParseCanonicalName(s.name, &base, &labels);
    if (base == family) sum += s.value;
  }
  return sum;
}

struct WindowAgg {
  double bad = 0;
  double total = 0;
  double Ratio() const { return total > 0 ? bad / total : 0; }
};

}  // namespace

void SloEventCounts(const SloObjective& objective,
                    const std::vector<MetricSnapshot>& snapshot, double* bad,
                    double* total) {
  *bad = 0;
  *total = 0;
  if (!objective.total_counter.empty()) {
    *bad = SumCounterFamily(snapshot, objective.error_counter);
    *total = SumCounterFamily(snapshot, objective.total_counter);
    return;
  }
  std::string base;
  Labels labels;
  for (const MetricSnapshot& s : snapshot) {
    if (s.kind != MetricSnapshot::Kind::kHistogram) continue;
    if (s.window_seconds > 0) continue;  // cumulative series only
    ParseCanonicalName(s.name, &base, &labels);
    if (base != objective.latency_histogram) continue;
    const double n = BucketTotal(s);
    *total += n;
    *bad += n - CountAtOrBelow(s, objective.latency_threshold_s);
  }
}

SloTracker::SloTracker(std::vector<SloObjective> objectives,
                       Registry* registry, EventLog* journal)
    : objectives_(std::move(objectives)),
      registry_(registry != nullptr ? registry : &DefaultRegistry()),
      journal_(journal != nullptr ? journal : &GlobalEventLog()),
      states_(objectives_.size()) {}

std::vector<SloStatus> SloTracker::Evaluate(
    const std::vector<MetricSnapshot>& snapshot, double now_s) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloStatus> out;
  out.reserve(objectives_.size());
  for (size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& o = objectives_[i];
    State& st = states_[i];
    double bad = 0, total = 0;
    SloEventCounts(o, snapshot, &bad, &total);
    if (st.have_prev) {
      // Counter resets (a node restarted) clamp to zero instead of
      // poisoning the window with a huge negative delta.
      const double dbad = std::max(0.0, bad - st.prev_bad);
      const double dtotal = std::max(0.0, total - st.prev_total);
      st.samples.push_back({now_s, dbad, dtotal});
    }
    st.have_prev = true;
    st.prev_bad = bad;
    st.prev_total = total;
    while (!st.samples.empty() &&
           st.samples.front().t < now_s - o.budget_window_s) {
      st.samples.pop_front();
    }

    WindowAgg w_short, w_long, w_budget;
    for (const Sample& sm : st.samples) {
      w_budget.bad += sm.bad;
      w_budget.total += sm.total;
      if (sm.t >= now_s - o.long_window_s) {
        w_long.bad += sm.bad;
        w_long.total += sm.total;
      }
      if (sm.t >= now_s - o.short_window_s) {
        w_short.bad += sm.bad;
        w_short.total += sm.total;
      }
    }

    SloStatus status;
    status.name = o.name;
    status.bad_ratio_short = w_short.Ratio();
    status.bad_ratio_long = w_long.Ratio();
    const double allowed = o.max_bad_ratio > 0 ? o.max_bad_ratio : 1.0;
    status.burn_short = status.bad_ratio_short / allowed;
    status.burn_long = status.bad_ratio_long / allowed;
    status.total_events = w_budget.total;
    if (w_budget.total > 0) {
      const double budget = allowed * w_budget.total;
      status.budget_remaining =
          std::clamp(1.0 - w_budget.bad / budget, 0.0, 1.0);
    }

    const bool hot = status.burn_short >= o.short_burn_threshold &&
                     status.burn_long >= o.long_burn_threshold &&
                     w_short.total >= static_cast<double>(o.min_samples);
    if (hot && !st.alerting) {
      st.alerting = true;
      registry_->GetCounter("slo_burn_alert_total", {{"slo", o.name}})
          .Increment();
      std::ostringstream detail;
      detail << "slo=" << o.name << " burn_short=" << status.burn_short
             << " burn_long=" << status.burn_long
             << " budget_remaining=" << status.budget_remaining;
      journal_->Append("slo.burn_alert", detail.str());
    } else if (!hot && st.alerting && status.burn_short < 1.0) {
      // Hysteresis: clear only once the short window burns below 1x, so
      // a flapping burn rate near the threshold stays one alert.
      st.alerting = false;
      registry_->GetCounter("slo_burn_clear_total", {{"slo", o.name}})
          .Increment();
      std::ostringstream detail;
      detail << "slo=" << o.name
             << " budget_remaining=" << status.budget_remaining;
      journal_->Append("slo.burn_clear", detail.str());
    }
    status.alerting = st.alerting;
    st.last = status;
    out.push_back(std::move(status));
  }
  return out;
}

std::vector<SloStatus> SloTracker::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloStatus> out;
  out.reserve(states_.size());
  for (const State& st : states_) {
    if (st.have_prev) out.push_back(st.last);
  }
  return out;
}

}  // namespace vizndp::obs
