// Clock-aligned merging of a remote (storage-node) trace fragment into
// the local tracer. Client and server each timestamp spans against their
// own steady_clock epoch, so a server span's raw timestamps are
// meaningless in the client's timeline. The four RPC timestamps
//
//   t0  client sends the request      (client clock)
//   t1  server receives it            (server clock)
//   t2  server sends the reply        (server clock)
//   t3  client receives the reply     (client clock)
//
// give the classic NTP midpoint estimate: assuming the two wire legs are
// symmetric, the server clock is offset from the client clock by
//
//   offset = ((t0 - t1) + (t3 - t2)) / 2
//
// and server timestamps map into client time as t + offset. The same
// four numbers bound the wire itself: the request leg is [t0, t1+offset]
// and the reply leg is [t2+offset, t3], each of duration
// (rtt - server_time) / 2 >= 0 — so wire pseudo-spans are non-negative
// by construction (and clamped anyway, for clocks that misbehave).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.h"

namespace vizndp::obs {

struct ClockOffset {
  // Add to a server timestamp to get client time (may be negative).
  std::int64_t offset_us = 0;
  // Wire leg durations implied by the midpoint assumption.
  std::uint64_t wire_request_us = 0;
  std::uint64_t wire_reply_us = 0;

  static ClockOffset Estimate(std::uint64_t t0_client_send,
                              std::uint64_t t1_server_recv,
                              std::uint64_t t2_server_send,
                              std::uint64_t t3_client_recv);

  std::uint64_t ToLocal(std::uint64_t server_us) const;
};

// One RPC attempt's worth of remote trace material, as carried by the
// reply piggyback (see rpc/protocol.h).
struct RemoteAttemptTrace {
  std::uint64_t t0_client_send_us = 0;
  std::uint64_t t3_client_recv_us = 0;
  std::uint64_t t1_server_recv_us = 0;
  std::uint64_t t2_server_send_us = 0;
  bool has_server_times = false;
  std::vector<DrainedEvent> server_events;
};

// Injects the attempt's server spans (clock-aligned, original tracks)
// and two wire pseudo-spans ("wire:request" / "wire:reply" on the
// "wire" track, parented under `parent_span_id`) into `tracer`. No-op
// when the attempt carries no server times. Returns the estimate used.
ClockOffset MergeRemoteAttempt(Tracer& tracer,
                               const RemoteAttemptTrace& attempt,
                               std::uint64_t trace_id,
                               std::uint64_t parent_span_id);

}  // namespace vizndp::obs
