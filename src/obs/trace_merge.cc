#include "obs/trace_merge.h"

namespace vizndp::obs {

namespace {

std::int64_t AsSigned(std::uint64_t v) { return static_cast<std::int64_t>(v); }

}  // namespace

ClockOffset ClockOffset::Estimate(std::uint64_t t0, std::uint64_t t1,
                                  std::uint64_t t2, std::uint64_t t3) {
  ClockOffset out;
  // Midpoint: average the two per-leg offset bounds. Computed in signed
  // 64-bit; steady-clock micros since process start stay far below the
  // 2^63 range.
  out.offset_us = ((AsSigned(t0) - AsSigned(t1)) +
                   (AsSigned(t3) - AsSigned(t2))) / 2;
  // (rtt - server residency) / 2, split evenly over the two legs; clamp
  // against pathological inputs (t3 < t0, server residency > rtt).
  const std::int64_t rtt = AsSigned(t3) - AsSigned(t0);
  const std::int64_t server = AsSigned(t2) - AsSigned(t1);
  const std::int64_t wire = rtt > server ? rtt - server : 0;
  out.wire_request_us = static_cast<std::uint64_t>(wire / 2);
  out.wire_reply_us = static_cast<std::uint64_t>(wire - wire / 2);
  return out;
}

std::uint64_t ClockOffset::ToLocal(std::uint64_t server_us) const {
  const std::int64_t local = AsSigned(server_us) + offset_us;
  return local > 0 ? static_cast<std::uint64_t>(local) : 0;
}

ClockOffset MergeRemoteAttempt(Tracer& tracer,
                               const RemoteAttemptTrace& attempt,
                               std::uint64_t trace_id,
                               std::uint64_t parent_span_id) {
  if (!attempt.has_server_times) return {};
  const ClockOffset offset =
      ClockOffset::Estimate(attempt.t0_client_send_us,
                            attempt.t1_server_recv_us,
                            attempt.t2_server_send_us,
                            attempt.t3_client_recv_us);
  for (const DrainedEvent& e : attempt.server_events) {
    Tracer::SpanIds ids;
    ids.trace_id = e.trace_id;
    ids.span_id = e.span_id;
    ids.parent_span_id = e.parent_span_id;
    tracer.Inject(e.track, e.name, offset.ToLocal(e.start_us), e.dur_us, ids);
  }
  Tracer::SpanIds wire_ids;
  wire_ids.trace_id = trace_id;
  wire_ids.span_id = NextSpanId();
  wire_ids.parent_span_id = parent_span_id;
  tracer.Inject("wire", "wire:request", attempt.t0_client_send_us,
                offset.wire_request_us, wire_ids);
  wire_ids.span_id = NextSpanId();
  tracer.Inject("wire", "wire:reply",
                offset.ToLocal(attempt.t2_server_send_us),
                offset.wire_reply_us, wire_ids);
  return offset;
}

}  // namespace vizndp::obs
