// SLO tracking over scraped metric snapshots: declarative objectives
// ("fetch p99 <= 250 ms", "error rate <= 2%") evaluated with the SRE
// multi-window burn-rate model.
//
// Every objective reduces to a bad-event ratio. Latency objectives count
// bad events straight off cumulative histogram buckets (observations
// above the threshold, interpolating inside the straddling bucket);
// error objectives are an error-counter / total-counter pair. Each
// Evaluate diffs the cumulative snapshot against the previous one, so
// the tracker owns its own time windows and the scrape cadence never
// double-counts. Burn rate = (bad ratio over a window) / (allowed
// ratio); an alert fires when both the short and long windows burn hot —
// fast enough to page on a real outage, two windows so a single spike
// can't. Error budget: the fraction of allowed bad events left over the
// trailing budget_window.
//
// Alerts are edge-triggered and audited the same way the cluster and
// storage layers are: one slo_burn_alert_total{slo=...} increment pairs
// with exactly one "slo.burn_alert" journal event (chaos kAuditPairs
// enforces the 1:1), and symmetrically for slo.burn_clear.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace vizndp::obs {

struct SloObjective {
  std::string name;  // label value on the alert counters

  // Latency form: cumulative histogram family (base name; all label
  // series of that family sum) and the threshold defining a bad event.
  // Overflow-bucket mass always counts as bad — its values are unknown
  // but above every finite bound.
  std::string latency_histogram;
  double latency_threshold_s = 0;

  // Error form: bad = error counter family, total = total counter
  // family. Used when total_counter is non-empty.
  std::string error_counter;
  std::string total_counter;

  // The objective itself: bad/total must stay <= max_bad_ratio.
  double max_bad_ratio = 0.01;

  // Multi-window burn alerting. Defaults follow the SRE-book fast-burn
  // page (14.4x / 2x are the classic 1h/6h pair scaled down).
  double short_window_s = 60;
  double long_window_s = 300;
  double short_burn_threshold = 10;
  double long_burn_threshold = 2;
  // Error budget accounting horizon.
  double budget_window_s = 3600;
  // Events required in the short window before an alert may fire — a
  // fleet serving nothing has no SLO signal, only noise.
  std::uint64_t min_samples = 4;
};

struct SloStatus {
  std::string name;
  double bad_ratio_short = 0;
  double bad_ratio_long = 0;
  double burn_short = 0;   // bad_ratio_short / max_bad_ratio
  double burn_long = 0;
  double budget_remaining = 1.0;  // in [0,1] over budget_window_s
  double total_events = 0;        // events in the budget window
  bool alerting = false;
};

class SloTracker {
 public:
  // Counters land in `registry` (default: the process registry) and
  // events in `journal` (default: the global journal) so the chaos
  // audit sees them where it audits everything else.
  explicit SloTracker(std::vector<SloObjective> objectives,
                      Registry* registry = nullptr,
                      EventLog* journal = nullptr);

  // Feeds one scrape. `snapshot` carries *cumulative* series (the merge
  // of a fleet scrape); `now_s` is any monotonic clock in seconds —
  // explicit so tests drive the windows deterministically. Returns the
  // per-objective status after this evaluation.
  std::vector<SloStatus> Evaluate(const std::vector<MetricSnapshot>& snapshot,
                                  double now_s);

  // Last evaluation's statuses (empty before the first Evaluate).
  std::vector<SloStatus> status() const;

  const std::vector<SloObjective>& objectives() const { return objectives_; }

 private:
  struct Sample {
    double t = 0;
    double bad = 0;
    double total = 0;
  };
  struct State {
    bool have_prev = false;
    double prev_bad = 0;
    double prev_total = 0;
    std::deque<Sample> samples;  // trailing budget_window_s
    bool alerting = false;
    SloStatus last;
  };

  std::vector<SloObjective> objectives_;
  Registry* registry_;
  EventLog* journal_;
  mutable std::mutex mu_;
  std::vector<State> states_;
};

// Bad/total event counts an objective sees in a cumulative snapshot
// (before differencing). Exposed for tests.
void SloEventCounts(const SloObjective& objective,
                    const std::vector<MetricSnapshot>& snapshot, double* bad,
                    double* total);

}  // namespace vizndp::obs
