// Process observability, half one: a metrics registry of lock-cheap named
// counters, gauges, and fixed-bucket histograms. The paper's headline
// numbers are per-phase timings of the split pipeline; this registry is
// how every layer (rpc dispatch, NDP pre-filter, storage gateway, codecs)
// publishes those phases as first-class, scrape-able telemetry instead of
// hand-carried doubles.
//
// Concurrency model: metric handles returned by Registry::Get* are stable
// for the registry's lifetime and every update on them is a relaxed
// atomic, so the hot path (Counter::Increment, Histogram::Observe) takes
// no lock. Only handle lookup/creation and snapshotting lock the
// registry mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vizndp::obs {

class WindowedHistogram;

// Ring geometry for WindowedHistogram (see obs/windowed.h): the sliding
// window spans epochs * epoch_duration (defaults: 8 x 1.25s = 10s).
struct WindowedHistogramOptions {
  int epochs = 8;
  std::chrono::milliseconds epoch_duration{1250};
};

// Label set rendered into the canonical metric name, sorted by key:
// "rpc_requests_total{method=ndp.select}".
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
// (and > bounds[i-1]); one extra overflow bucket holds v > bounds.back().
//
// Exemplar: the histogram remembers its worst (largest) observation and,
// when the observing thread carried a TraceContext, that observation's
// trace_id — so the slowest ndp.fetch in a scrape is one lookup away
// from its merged trace. The exemplar path costs one relaxed load on the
// common (non-record) case.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t bucket(size_t i) const;

  // Worst observation so far and the trace it belonged to (trace_id 0 =
  // the worst observation was untraced). Meaningless while count() == 0.
  double exemplar_value() const;
  std::uint64_t exemplar_trace_id() const;

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};  // fast reject for the exemplar path
  mutable std::mutex exemplar_mu_;
  bool has_exemplar_ = false;
  double exemplar_value_ = 0.0;
  std::uint64_t exemplar_trace_ = 0;
};

// One exported metric, decoupled from live storage so snapshots can cross
// process boundaries (the ndp.metrics RPC ships these).
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;  // canonical name, labels folded in
  Kind kind = Kind::kCounter;
  double value = 0;       // counter/gauge value; histogram: sum
  std::uint64_t count = 0;             // histogram observations
  std::vector<double> bounds;          // histogram upper bounds
  std::vector<std::uint64_t> buckets;  // histogram counts, bounds.size()+1
  // Histogram exemplar: worst observation + its trace (0 = untraced).
  double exemplar_value = 0;
  std::uint64_t exemplar_trace_id = 0;
  // Sliding-window span this histogram covers; 0 = cumulative since
  // boot. Windowed series export under a "_window" base-name suffix so
  // both views coexist in one scrape (see obs/windowed.h).
  double window_seconds = 0;
};

// Estimated q-quantile (q in [0,1]) of a histogram snapshot: finds the
// bucket holding the target rank and interpolates linearly inside it.
// Pinned edge behavior (tests/obs_test.cc): q outside [0,1] — NaN
// included — clamps; empty histograms and non-histogram snapshots return
// 0; q=0 reports the lower edge of the first occupied bucket and q=1 the
// upper edge of the last; overflow-bucket mass reports the last finite
// bound as a known-low estimate (0 when there are no finite bounds). The
// rank denominator is the actual bucket mass, so a snapshot whose
// `count` disagrees with its buckets (a hand-merged one) stays sane.
double SnapshotQuantile(const MetricSnapshot& snapshot, double q);

// Snapshot of one live histogram (no registry walk) — how an adaptive
// policy reads a quantile off the metric it also feeds, e.g. the sharded
// client deriving its hedge delay from cluster_subfetch_seconds.
MetricSnapshot SnapshotHistogram(const Histogram& histogram,
                                 std::string name = {});

// SnapshotQuantile over a live histogram in one call.
double HistogramQuantile(const Histogram& histogram, double q);

// Splits a canonical name ("rpc_requests_total{method=ndp.select}") back
// into base name and label pairs; labels is empty for unlabeled names.
void ParseCanonicalName(const std::string& canonical, std::string* base,
                        Labels* labels);

const char* MetricKindName(MetricSnapshot::Kind kind);
MetricSnapshot::Kind MetricKindFromName(std::string_view name);

// Lookup by canonical name; nullptr when absent.
const MetricSnapshot* FindMetric(const std::vector<MetricSnapshot>& snapshot,
                                 const std::string& name);

std::string SnapshotToText(const std::vector<MetricSnapshot>& snapshot);
std::string SnapshotToJson(const std::vector<MetricSnapshot>& snapshot);
// Prometheus text exposition (one # TYPE line per metric family,
// histograms expanded into _bucket{le=...}/_sum/_count series, exemplars
// as trailing comments) so the registry scrapes without bespoke parsing.
std::string SnapshotToProm(const std::vector<MetricSnapshot>& snapshot);

// Renders "text", "json", or "prom"; throws Error on unknown formats.
std::string FormatSnapshot(const std::vector<MetricSnapshot>& snapshot,
                           const std::string& format);

class Registry {
 public:
  Registry() = default;
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Find-or-create. Returned references stay valid for the registry's
  // lifetime. A histogram's bounds are fixed by the first caller.
  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds,
                          const Labels& labels = {});
  // A windowed histogram snapshots twice: cumulative under `name`, the
  // sliding window under `name_window` (window_seconds set). Must not
  // collide with a plain histogram of the same canonical name.
  WindowedHistogram& GetWindowedHistogram(
      const std::string& name, std::vector<double> bounds,
      const Labels& labels = {}, const WindowedHistogramOptions& options = {});

  std::vector<MetricSnapshot> Snapshot() const;
  std::string TextSnapshot() const { return SnapshotToText(Snapshot()); }
  std::string JsonSnapshot() const { return SnapshotToJson(Snapshot()); }

  static std::string CanonicalName(const std::string& name,
                                   const Labels& labels);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // shared_ptr (not unique_ptr) so the deleter is captured where the
  // type is complete — headers only ever see the forward declaration.
  std::map<std::string, std::shared_ptr<WindowedHistogram>> windowed_;
};

// Process-wide registry used by substrate layers that have no natural
// owner (storage gateway, codecs). Servers own their own registries so
// per-server counts stay attributable.
Registry& DefaultRegistry();

// `count` upper bounds: start, start*factor, start*factor^2, ...
std::vector<double> ExponentialBounds(double start, double factor, int count);

// Default latency buckets: 1 µs .. ~16.8 s, factor 4.
std::vector<double> LatencyBounds();

// Process clocks for scrape stamps: seconds since the Unix epoch
// (system clock) and monotonic seconds since this process first touched
// the obs layer (anchored at first call; servers call it at startup).
double WallTimeSeconds();
double ProcessUptimeSeconds();

// Appends `process_wall_time_seconds` and `process_uptime_seconds`
// gauges so external scrapers can compute rates from two expositions
// without trusting their own clocks. Called by the ndp.metrics handler
// (not per-registry: a node's scrape concatenates three registries and
// must carry exactly one stamp pair).
void StampSnapshot(std::vector<MetricSnapshot>& snapshot);

// Minimal JSON string escaping shared by the snapshot and trace exports.
std::string JsonEscape(std::string_view s);

}  // namespace vizndp::obs
