#include "obs/context.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>

namespace vizndp::obs {

namespace {

thread_local TraceContext g_current;

// splitmix64 finalizer: cheap, well-mixed, and stateless.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Per-process random base so two processes (client and storage node)
// minting concurrently cannot collide on trace ids.
std::uint64_t ProcessSalt() {
  static const std::uint64_t salt = [] {
    std::random_device rd;
    const auto now = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return Mix((static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^ now);
  }();
  return salt;
}

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_span{1};

}  // namespace

TraceContext TraceContext::Mint(bool sampled) {
  TraceContext ctx;
  const std::uint64_t n = g_next_trace.fetch_add(1, std::memory_order_relaxed);
  ctx.trace_id = Mix(ProcessSalt() ^ n);
  if (ctx.trace_id == 0) ctx.trace_id = 1;  // 0 is the "no trace" sentinel
  ctx.span_id = 0;
  ctx.sampled = sampled;
  return ctx;
}

std::string TraceIdHex(std::uint64_t trace_id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

const TraceContext& CurrentTraceContext() { return g_current; }

void internal_SetCurrentTraceContext(const TraceContext& ctx) {
  g_current = ctx;
}

std::uint64_t NextSpanId() {
  // Salted like trace ids: a merged timeline holds spans minted by both
  // the client and the storage node, so a bare counter would collide
  // (two "span 1"s) and make parent_span_id references ambiguous.
  const std::uint64_t n = g_next_span.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = Mix(~ProcessSalt() ^ n);
  return id == 0 ? 1 : id;  // 0 means "root of the trace"
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : saved_(g_current), installed_(ctx) {
  g_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_current = saved_; }

}  // namespace vizndp::obs
