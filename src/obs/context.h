// Request-scoped trace identity, the glue that turns per-process spans
// into one distributed trace. A TraceContext names a pipeline execution
// (trace_id), the span the next piece of work should nest under
// (span_id), and whether anyone is collecting (sampled). The context
// rides a thread-local so instrumentation deep in the stack (codecs,
// retry sleeps, server handlers) tags its spans and events without any
// plumbing through signatures; rpc::Client/Server carry it across the
// wire inside the msgpack-rpc frame.
//
// Cost model: when no context is installed (the default — nothing minted,
// tracing off) the per-span overhead is one thread-local read and a
// branch; span-id allocation and the save/restore dance only happen for
// sampled requests.
#pragma once

#include <cstdint>
#include <string>

namespace vizndp::obs {

struct TraceContext {
  // Nonzero identifies one end-to-end pipeline execution; 0 = no trace.
  std::uint64_t trace_id = 0;
  // The span new work should parent under (0 = root of the trace).
  std::uint64_t span_id = 0;
  // True when a collector wants this request's spans/events. An
  // unsampled context still tags, but is never propagated over RPC, so
  // default traffic keeps the pre-tracing wire format.
  bool sampled = false;

  bool valid() const { return trace_id != 0; }

  // Fresh trace root: process-unique trace_id, span_id 0.
  static TraceContext Mint(bool sampled = true);
};

// Lower-case hex rendering used everywhere a trace_id crosses into text
// (logs, JSON, Perfetto args) — 64-bit ids do not survive JS doubles.
std::string TraceIdHex(std::uint64_t trace_id);

// The calling thread's current context (invalid when none installed).
const TraceContext& CurrentTraceContext();

// Allocates a process-unique span id (never 0).
std::uint64_t NextSpanId();

// Implementation hook for obs::Span, which installs itself as the
// thread's current span and restores the parent in End() — a lifetime
// ScopedTraceContext cannot model. Not for general use.
void internal_SetCurrentTraceContext(const TraceContext& ctx);

// RAII installer: saves the thread's context, installs `ctx`, restores on
// destruction. Used at trace roots (NdpContourSource, NdpClient) and by
// rpc::Server::Dispatch when a request frame carries a context.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  // The context this scope installed (not affected by nested scopes).
  const TraceContext& context() const { return installed_; }

 private:
  TraceContext saved_;
  TraceContext installed_;
};

}  // namespace vizndp::obs
