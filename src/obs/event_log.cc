#include "obs/event_log.h"

#include <sstream>

#include "obs/context.h"
#include "obs/metrics.h"

namespace vizndp::obs {

EventLog::EventLog(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      epoch_(std::chrono::steady_clock::now()) {}

void EventLog::Append(std::string name, std::string detail) {
  const TraceContext& ctx = CurrentTraceContext();
  LogEvent event;
  event.trace_id = ctx.trace_id;
  event.span_id = ctx.span_id;
  event.ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  event.name = std::move(name);
  event.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
  } else {
    events_[ring_next_] = std::move(event);
    ring_next_ = (ring_next_ + 1) % capacity_;
  }
}

std::vector<LogEvent> EventLog::Events(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogEvent> out;
  const size_t n = events_.size();
  const size_t first = n < capacity_ ? 0 : ring_next_;
  for (size_t i = 0; i < n; ++i) {
    const LogEvent& e = events_[(first + i) % n];
    if (trace_id == 0 || e.trace_id == trace_id) out.push_back(e);
  }
  return out;
}

std::uint64_t EventLog::LastSeq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

size_t EventLog::CountSince(std::string_view name,
                            std::uint64_t after_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const LogEvent& e : events_) {
    if (e.seq > after_seq && e.name == name) ++count;
  }
  return count;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  ring_next_ = 0;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string EventLog::Json(std::uint64_t trace_id) const {
  const std::vector<LogEvent> events = Events(trace_id);
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const LogEvent& e = events[i];
    if (i > 0) os << ",";
    os << "{\"seq\":" << e.seq << ",\"trace_id\":\"" << TraceIdHex(e.trace_id)
       << "\",\"ts\":" << e.ts_us << ",\"name\":\"" << JsonEscape(e.name)
       << "\",\"detail\":\"" << JsonEscape(e.detail) << "\"}";
  }
  os << "]";
  return os.str();
}

EventLog& GlobalEventLog() {
  static EventLog* log = new EventLog();  // leaked: outlives all users
  return *log;
}

}  // namespace vizndp::obs
