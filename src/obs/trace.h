// Process observability, half two: a tracing layer. RAII Span objects
// feed a per-process ring buffer of complete ("ph":"X") events that
// exports chrome://tracing / Perfetto-compatible JSON, so one NDP fetch
// renders as nested read → decompress → select → pack → transfer →
// decode → scatter spans across "server" and "client" tracks.
//
// Cost model: a Span always reads the monotonic clock (so phase timings
// like NdpLoadStats can be populated from spans even when tracing is
// off), but it only touches the buffer — one mutex'd push — when the
// tracer is enabled. Disabled tracing is therefore two clock reads per
// span, a few tens of nanoseconds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vizndp::obs {

struct TraceEvent {
  std::string name;
  std::uint32_t track = 0;    // index into the tracer's track table
  std::uint64_t start_us = 0; // microseconds since the tracer's epoch
  std::uint64_t dur_us = 0;
};

// A drained event carries its track *name* so it can cross a process
// boundary (the ndp.trace RPC ships these from storage node to client).
struct DrainedEvent {
  std::string name;
  std::string track;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable(bool on = true) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Names the calling thread's track ("server", "client"); events
  // recorded from this thread land on it. Unnamed threads get an
  // auto-assigned "thread-N" track at first record.
  void SetThreadTrack(const std::string& name);

  // Records one complete span; oldest events are overwritten once the
  // ring is full. No-op while disabled.
  void Record(std::string name, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  // Records a foreign event verbatim on the named track — used to merge
  // a scraped storage-node trace into the client's buffer. Ignores the
  // enabled flag (the caller already decided to collect).
  void Inject(const std::string& track, std::string name,
              std::uint64_t start_us, std::uint64_t dur_us);

  // Returns the buffered events (oldest first) and clears the buffer.
  std::vector<DrainedEvent> Drain();

  void Clear();
  size_t event_count() const;
  std::uint64_t NowMicros() const;

  // {"traceEvents":[...]} with thread_name metadata per named track and
  // events sorted by timestamp. Load in chrome://tracing or Perfetto.
  void WriteChromeJson(std::ostream& os) const;
  std::string ChromeJson() const;

 private:
  std::uint32_t ThreadTrackLocked();
  std::uint32_t TrackIdLocked(const std::string& name);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t ring_next_ = 0;  // overwrite cursor once events_ hits capacity_
  std::vector<std::string> track_names_;
  std::map<std::thread::id, std::uint32_t> thread_tracks_;
};

// The process tracer every instrumented layer records into.
Tracer& GlobalTracer();

// RAII span: captures the clock at construction, records on End() (or
// destruction) when the tracer is enabled. ElapsedSeconds() works either
// way, which is how NdpLoadStats is populated from spans.
class Span {
 public:
  explicit Span(std::string name, Tracer& tracer = GlobalTracer())
      : tracer_(tracer),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { End(); }

  // Idempotent; later calls keep the first end time.
  void End() {
    if (ended_) return;
    ended_ = true;
    end_ = std::chrono::steady_clock::now();
    tracer_.Record(std::move(name_), start_, end_);
  }

  double ElapsedSeconds() const {
    const auto end = ended_ ? end_ : std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start_).count();
  }

 private:
  Tracer& tracer_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point end_;
  bool ended_ = false;
};

}  // namespace vizndp::obs
