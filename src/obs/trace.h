// Process observability, half two: a tracing layer. RAII Span objects
// feed a per-process ring buffer of complete ("ph":"X") events that
// exports chrome://tracing / Perfetto-compatible JSON, so one NDP fetch
// renders as nested read → decompress → select → pack → transfer →
// decode → scatter spans across "server" and "client" tracks.
//
// Distributed traces: when the calling thread carries a TraceContext
// (see obs/context.h), every Span allocates a span id, parents itself
// under the context's span, and tags its event with the trace id. The
// tagged events survive Drain/Inject round trips, so a storage node's
// spans merge into the client's buffer still carrying their identity,
// and Collect/Extract can pull one request's spans out of the ring.
//
// Cost model: a Span always reads the monotonic clock (so phase timings
// like NdpLoadStats can be populated from spans even when tracing is
// off), but it only touches the buffer — one mutex'd push — when the
// tracer is enabled. Disabled tracing with no installed context is
// therefore two clock reads plus one thread-local branch per span.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/context.h"

namespace vizndp::obs {

struct TraceEvent {
  std::string name;
  std::uint32_t track = 0;    // index into the tracer's track table
  std::uint64_t start_us = 0; // microseconds since the tracer's epoch
  std::uint64_t dur_us = 0;
  // Distributed-trace identity; all zero for untagged events.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

// A drained event carries its track *name* so it can cross a process
// boundary (the ndp.trace RPC and the reply piggyback ship these from
// storage node to client).
struct DrainedEvent {
  std::string name;
  std::string track;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable(bool on = true) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Names the calling thread's track ("server", "client"); events
  // recorded from this thread land on it. Unnamed threads get an
  // auto-assigned "thread-N" track at first record.
  void SetThreadTrack(const std::string& name);

  // Records one complete span; oldest events are overwritten once the
  // ring is full. No-op while disabled. `ctx` carries the span's
  // distributed identity ({} = untagged).
  void Record(std::string name, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);
  struct SpanIds {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
  };
  void Record(std::string name, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end, const SpanIds& ids);

  // Records a foreign event verbatim on the named track — used to merge
  // a scraped storage-node trace into the client's buffer. Ignores the
  // enabled flag (the caller already decided to collect).
  void Inject(const std::string& track, std::string name,
              std::uint64_t start_us, std::uint64_t dur_us,
              const SpanIds& ids);
  void Inject(const std::string& track, std::string name,
              std::uint64_t start_us, std::uint64_t dur_us) {
    Inject(track, std::move(name), start_us, dur_us, SpanIds());
  }

  // Returns the buffered events (oldest first) and clears the buffer.
  std::vector<DrainedEvent> Drain();

  // Non-destructive copy of the events tagged with `trace_id`.
  std::vector<DrainedEvent> Collect(std::uint64_t trace_id) const;

  // Destructive Collect: removes and returns the events tagged with
  // `trace_id`, leaving everything else buffered. This is how a reply
  // piggyback *moves* a request's spans to the client instead of
  // copying them (so a shared in-proc tracer never sees duplicates).
  std::vector<DrainedEvent> Extract(std::uint64_t trace_id);

  // Extract narrowed to the descendants of `root_span_id`: only events
  // whose parent chain leads to the root are moved out. This is what the
  // reply piggyback actually uses — when client and server share one
  // in-proc tracer, a plain Extract would also steal the client's
  // already-recorded spans from *earlier attempts* of the same trace and
  // re-inject them clock-shifted. The server half of one attempt is
  // exactly the subtree under the request ctx's span.
  std::vector<DrainedEvent> ExtractSubtree(std::uint64_t trace_id,
                                           std::uint64_t root_span_id);

  void Clear();
  size_t event_count() const;
  std::uint64_t NowMicros() const;

  // {"traceEvents":[...]} with thread_name metadata per named track,
  // events sorted by timestamp, and trace/span identity exported under
  // "args" for tagged events. Load in chrome://tracing or Perfetto.
  void WriteChromeJson(std::ostream& os) const;
  std::string ChromeJson() const;

 private:
  std::uint32_t ThreadTrackLocked();
  std::uint32_t TrackIdLocked(const std::string& name);
  void PushLocked(TraceEvent event);
  std::vector<TraceEvent> Linearized() const;  // oldest first; mu_ held

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t ring_next_ = 0;  // overwrite cursor once events_ hits capacity_
  std::vector<std::string> track_names_;
  std::map<std::thread::id, std::uint32_t> thread_tracks_;
};

// The process tracer every instrumented layer records into.
Tracer& GlobalTracer();

// RAII span: captures the clock at construction, records on End() (or
// destruction) when the tracer is enabled. ElapsedSeconds() works either
// way, which is how NdpLoadStats is populated from spans.
//
// When the thread carries a valid TraceContext, the span allocates its
// own span id, parents under the context's span, and installs itself as
// the thread's current span until End() — so nested Spans form the
// parent chain a merged trace renders.
class Span {
 public:
  explicit Span(std::string name, Tracer& tracer = GlobalTracer());

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { End(); }

  // Idempotent; later calls keep the first end time.
  void End();

  double ElapsedSeconds() const {
    const auto end = ended_ ? end_ : std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start_).count();
  }

  // This span's distributed identity (span_id 0 when untagged).
  std::uint64_t span_id() const { return ids_.span_id; }
  std::uint64_t trace_id() const { return ids_.trace_id; }

 private:
  Tracer& tracer_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point end_;
  bool ended_ = false;
  bool scoped_ = false;  // installed itself as the thread's current span
  Tracer::SpanIds ids_;
  TraceContext saved_;   // restored at End() when scoped_
};

}  // namespace vizndp::obs
