#include "sim/noise.h"

#include <cmath>

namespace vizndp::sim {

std::uint64_t HashU64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double LatticeRandom(std::int64_t i, std::int64_t j, std::int64_t k,
                     std::uint64_t seed) {
  std::uint64_t h = seed;
  h = HashU64(h ^ static_cast<std::uint64_t>(i));
  h = HashU64(h ^ static_cast<std::uint64_t>(j));
  h = HashU64(h ^ static_cast<std::uint64_t>(k));
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

namespace {

double Fade(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

double ValueNoise(double x, double y, double z, std::uint64_t seed) {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const double fz = std::floor(z);
  const auto i = static_cast<std::int64_t>(fx);
  const auto j = static_cast<std::int64_t>(fy);
  const auto k = static_cast<std::int64_t>(fz);
  const double tx = Fade(x - fx);
  const double ty = Fade(y - fy);
  const double tz = Fade(z - fz);

  double corners[2][2][2];
  for (int dk = 0; dk < 2; ++dk) {
    for (int dj = 0; dj < 2; ++dj) {
      for (int di = 0; di < 2; ++di) {
        corners[dk][dj][di] = LatticeRandom(i + di, j + dj, k + dk, seed);
      }
    }
  }
  const auto lerp = [](double a, double b, double t) { return a + t * (b - a); };
  const double c00 = lerp(corners[0][0][0], corners[0][0][1], tx);
  const double c01 = lerp(corners[0][1][0], corners[0][1][1], tx);
  const double c10 = lerp(corners[1][0][0], corners[1][0][1], tx);
  const double c11 = lerp(corners[1][1][0], corners[1][1][1], tx);
  const double c0 = lerp(c00, c01, ty);
  const double c1 = lerp(c10, c11, ty);
  return lerp(c0, c1, tz);
}

double FractalNoise(double x, double y, double z, std::uint64_t seed,
                    int octaves) {
  double sum = 0.0;
  double amplitude = 1.0;
  double total = 0.0;
  double frequency = 1.0;
  for (int o = 0; o < octaves; ++o) {
    sum += amplitude *
           ValueNoise(x * frequency, y * frequency, z * frequency,
                      seed + static_cast<std::uint64_t>(o) * 0x51ED2701u);
    total += amplitude;
    amplitude *= 0.5;
    frequency *= 2.0;
  }
  return sum / total;
}

}  // namespace vizndp::sim
