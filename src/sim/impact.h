// Synthetic deep-water asteroid impact generator — the stand-in for the
// paper's xRage dataset [13] (Sec. III). A sphere of asteroid material
// falls through the atmosphere, strikes an ocean slab mid-simulation, and
// throws up a splash/tsunami. Each timestep carries the paper's 11 arrays
// (Table I); the contour targets are v02 (water volume fraction) and v03
// (asteroid volume fraction), both in [0, 1].
//
// The generator is engineered to reproduce the drivers behind the paper's
// results rather than its exact physics:
//  * early timesteps are near-piecewise-constant (air exactly 0, water
//    exactly 1) -> very high GZip/LZ4 ratios that decay as a quantized,
//    smoothly varying "churn" region (splash, foam, wake) grows with time
//    (paper Fig. 5a/5d: GZip 7-588x, LZ4 6-299x);
//  * v03's asteroid occupies far less mesh than v02's ocean -> much lower
//    contour selectivity (paper Fig. 6);
//  * churn values are skewed toward low volume fractions, so higher
//    contour values select fewer points (paper Fig. 6 trend).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/dataset.h"

namespace vizndp::sim {

struct ImpactConfig {
  std::int64_t n = 128;           // grid is n^3
  std::uint64_t seed = 20240913;  // LA-UR-ish default
  double ocean_level = 0.35;      // z of the initial ocean surface
  double impact_tau = 0.45;       // normalized time of impact
  double asteroid_radius = 0.05;  // in normalized domain units
  // Last timestep label; the paper's run spans 0..48013.
  std::int64_t final_timestep = 48013;
};

// The paper's Table I array names, in order.
const std::vector<std::string>& ImpactArrayNames();

// Generates the full 11-array dataset for `timestep` (0..final_timestep).
grid::Dataset GenerateImpactTimestep(const ImpactConfig& config,
                                     std::int64_t timestep);

// Generates only the named arrays (cheaper when benchmarking v02/v03).
grid::Dataset GenerateImpactTimestep(const ImpactConfig& config,
                                     std::int64_t timestep,
                                     const std::vector<std::string>& arrays);

// The paper's 9 evaluation timesteps, evenly spanning 0..final_timestep.
std::vector<std::int64_t> ImpactTimestepLabels(const ImpactConfig& config,
                                               int count = 9);

}  // namespace vizndp::sim
