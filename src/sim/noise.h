// Deterministic procedural noise used by the dataset generators: integer
// hashing, trilinearly interpolated value noise, and fractal (multi-
// octave) noise. Everything is a pure function of coordinates and seed,
// so regenerating a timestep always yields identical bytes.
#pragma once

#include <cstdint>

namespace vizndp::sim {

// SplitMix64-style avalanche hash.
std::uint64_t HashU64(std::uint64_t x);

// Hash of a lattice point plus seed, as a uniform double in [0, 1).
double LatticeRandom(std::int64_t i, std::int64_t j, std::int64_t k,
                     std::uint64_t seed);

// Smooth value noise in [0, 1): trilinear interpolation of lattice
// randoms with a smoothstep fade, sampled at continuous (x, y, z).
double ValueNoise(double x, double y, double z, std::uint64_t seed);

// Sum of `octaves` value-noise octaves (frequency doubles, amplitude
// halves), normalized to [0, 1).
double FractalNoise(double x, double y, double z, std::uint64_t seed,
                    int octaves);

// Zero-mean variant in [-1, 1).
inline double SignedFractalNoise(double x, double y, double z,
                                 std::uint64_t seed, int octaves) {
  return 2.0 * FractalNoise(x, y, z, seed, octaves) - 1.0;
}

}  // namespace vizndp::sim
