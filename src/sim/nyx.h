// Synthetic Nyx-like cosmology snapshot — the stand-in for the paper's
// SDRBench Nyx dataset (Sec. VII). Six arrays: velocity_{x,y,z},
// temperature, dark_matter_density, baryon_density. The contour target is
// baryon_density at the halo-formation threshold 81.66, with target
// selectivity around 0.06% (paper Fig. 12).
//
// Fidelity drivers reproduced:
//  * baryon density is a log-normal-ish field (exp of fractal noise) with
//    explicit halo peaks, so the 81.66 threshold carves rare compact
//    regions -> very low contour selectivity;
//  * every value is full-precision float noise -> GZip/LZ4 achieve almost
//    nothing (the paper measured an 11% size reduction), which is what
//    makes Fig. 14's "compression does not help here" story come out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/dataset.h"

namespace vizndp::sim {

struct NyxConfig {
  std::int64_t n = 128;  // grid is n^3
  std::uint64_t seed = 16170424;
  int halo_count = 60;           // explicit density peaks
  double halo_peak_density = 400.0;
  double mean_density = 1.0;     // cosmic mean (threshold is 81.66x this)
};

inline constexpr double kHaloThreshold = 81.66;

const std::vector<std::string>& NyxArrayNames();

grid::Dataset GenerateNyx(const NyxConfig& config);

// Generates only the named arrays.
grid::Dataset GenerateNyx(const NyxConfig& config,
                          const std::vector<std::string>& arrays);

}  // namespace vizndp::sim
