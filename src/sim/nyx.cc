#include "sim/nyx.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sim/noise.h"

namespace vizndp::sim {

namespace {

struct Halo {
  double x, y, z;
  double radius;
  double peak;
};

std::vector<Halo> MakeHalos(const NyxConfig& cfg) {
  std::vector<Halo> halos;
  halos.reserve(static_cast<size_t>(cfg.halo_count));
  for (int h = 0; h < cfg.halo_count; ++h) {
    const double u = LatticeRandom(h, 11, 0, cfg.seed ^ 0xAA01);
    const double v = LatticeRandom(h, 12, 0, cfg.seed ^ 0xAA01);
    const double w = LatticeRandom(h, 13, 0, cfg.seed ^ 0xAA01);
    const double s = LatticeRandom(h, 14, 0, cfg.seed ^ 0xAA01);
    const double p = LatticeRandom(h, 15, 0, cfg.seed ^ 0xAA01);
    halos.push_back({u, v, w,
                     (0.003 + 0.007 * s),  // compact: ~1-2 cells at n=128
                     cfg.halo_peak_density * (0.4 + 1.6 * p)});
  }
  return halos;
}

}  // namespace

const std::vector<std::string>& NyxArrayNames() {
  static const std::vector<std::string> names = {
      "velocity_x", "velocity_y",          "velocity_z",
      "temperature", "dark_matter_density", "baryon_density"};
  return names;
}

grid::Dataset GenerateNyx(const NyxConfig& config) {
  return GenerateNyx(config, NyxArrayNames());
}

grid::Dataset GenerateNyx(const NyxConfig& config,
                          const std::vector<std::string>& arrays) {
  const std::int64_t n = config.n;
  VIZNDP_CHECK_MSG(n >= 4, "nyx grid must be at least 4^3");
  const grid::Dims dims{n, n, n};
  const double inv = 1.0 / static_cast<double>(n);
  grid::UniformGeometry geo;
  geo.spacing = {inv, inv, inv};
  grid::Dataset dataset(dims, geo);

  const std::vector<Halo> halos = MakeHalos(config);
  const auto npoints = static_cast<size_t>(dims.PointCount());

  for (const std::string& name : arrays) {
    std::vector<float> a(npoints);
    std::uint64_t seed = config.seed;
    for (size_t c = 0; c < name.size(); ++c) {
      seed = HashU64(seed ^ static_cast<std::uint64_t>(name[c]));
    }
    for (std::int64_t k = 0; k < n; ++k) {
      const double z = (static_cast<double>(k) + 0.5) * inv;
      for (std::int64_t j = 0; j < n; ++j) {
        const double y = (static_cast<double>(j) + 0.5) * inv;
        for (std::int64_t i = 0; i < n; ++i) {
          const double x = (static_cast<double>(i) + 0.5) * inv;
          const size_t id = static_cast<size_t>(dims.Index(i, j, k));
          if (name == "baryon_density" || name == "dark_matter_density") {
            // Log-normal background: exp of zero-mean fractal noise. The
            // cosmic-web filaments come from squaring one octave.
            const double g =
                SignedFractalNoise(x * 8, y * 8, z * 8, seed, 4);
            const double web =
                FractalNoise(x * 4 + 31, y * 4 + 17, z * 4 + 5, seed ^ 0x77, 3);
            double density =
                config.mean_density * std::exp(1.8 * g + 2.4 * web * web);
            for (const Halo& halo : halos) {
              // Periodic minimum-image distance.
              double dx = std::abs(x - halo.x);
              double dy = std::abs(y - halo.y);
              double dz = std::abs(z - halo.z);
              dx = std::min(dx, 1.0 - dx);
              dy = std::min(dy, 1.0 - dy);
              dz = std::min(dz, 1.0 - dz);
              const double d2 = dx * dx + dy * dy + dz * dz;
              const double r2 = halo.radius * halo.radius;
              if (d2 < 9.0 * r2) {
                density += halo.peak * std::exp(-d2 / r2);
              }
            }
            // Full-precision jitter: keeps the bytes incompressible like
            // the real dataset.
            density *= 1.0 + 1e-4 * (LatticeRandom(i, j, k, seed ^ 0x9) - 0.5);
            a[id] = static_cast<float>(
                density * (name == "dark_matter_density" ? 5.2 : 1.0));
          } else if (name == "temperature") {
            const double g = FractalNoise(x * 10, y * 10, z * 10, seed, 4);
            a[id] = static_cast<float>(1.0e4 * std::exp(2.0 * g));
          } else {  // velocity components
            a[id] = static_cast<float>(
                3.0e7 * SignedFractalNoise(x * 6, y * 6, z * 6, seed, 4));
          }
        }
      }
    }
    dataset.AddArray(grid::DataArray::FromVector(name, std::move(a)));
  }
  return dataset;
}

}  // namespace vizndp::sim
