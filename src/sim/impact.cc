#include "sim/impact.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sim/noise.h"

namespace vizndp::sim {

namespace {

// Quantization used for all volume-fraction "churn" values: multiples of
// 1/256. Keeps late-timestep data compressible at single-digit ratios
// (like the paper's) instead of collapsing to ratio ~1 float noise.
float Quantize(double v) {
  return static_cast<float>(std::round(std::clamp(v, 0.0, 1.0) * 256.0) / 256.0);
}

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

struct Fragment {
  double dx, dy, dz;  // unit direction
  double speed;
  double radius_scale;
};

// Post-impact debris directions, fixed per seed.
std::vector<Fragment> MakeFragments(std::uint64_t seed) {
  std::vector<Fragment> out;
  for (int f = 0; f < 8; ++f) {
    const double u = LatticeRandom(f, 1, 0, seed ^ 0xF4A6);
    const double v = LatticeRandom(f, 2, 0, seed ^ 0xF4A6);
    const double w = LatticeRandom(f, 3, 0, seed ^ 0xF4A6);
    const double az = 2.0 * 3.14159265358979 * u;
    const double el = 0.15 + 1.1 * v;  // mostly sideways/up
    out.push_back({std::cos(az) * std::cos(el), std::sin(az) * std::cos(el),
                   std::sin(el), 0.15 + 0.25 * w, 0.25 + 0.3 * w});
  }
  return out;
}

// Everything needed to evaluate one timestep's fields at a point.
class ImpactField {
 public:
  ImpactField(const ImpactConfig& config, std::int64_t timestep)
      : cfg_(config),
        tau_(static_cast<double>(timestep) /
             static_cast<double>(config.final_timestep)),
        dt_(tau_ - config.impact_tau),
        post_impact_(tau_ >= config.impact_tau),
        w_(2.0 / static_cast<double>(config.n)),  // interface half-width
        fragments_(MakeFragments(config.seed)) {
    // Asteroid main-body trajectory.
    if (!post_impact_) {
      const double fall = tau_ / cfg_.impact_tau;
      ast_z_ = 0.95 - (0.95 - cfg_.ocean_level - cfg_.asteroid_radius) * fall;
      ast_r_ = cfg_.asteroid_radius;
    } else {
      // Decelerating descent into the water column; body swells and sheds
      // fragments as it breaks up.
      ast_z_ = cfg_.ocean_level + cfg_.asteroid_radius -
               0.25 * (1.0 - std::exp(-3.0 * dt_));
      ast_r_ = cfg_.asteroid_radius * (1.0 + 1.6 * dt_);
    }
    // Churn-region intensity: grows through the whole run (the paper's
    // entropy rises even before impact as the atmosphere responds).
    churn_ = Clamp01((tau_ + 0.02) / 1.0);
    churn_thickness_ = 0.003 + 0.17 * std::pow(churn_, 1.5);
    // Atmospheric haze coverage: fine dust/vapor that fills the air over
    // the run. Values stay far below the 0.1 contour, so haze never
    // contributes crossings — it exists purely to drive the fast
    // compression-ratio decay the paper measures (588x at t=0 dropping
    // toward 7x) independently of contour selectivity.
    haze_coverage_ = 0.45 * Clamp01(1.35 * std::pow(tau_, 0.75));
  }

  // Dust/vapor fraction at an in-air point; 0 outside the haze. Clumpy
  // (few-cell blobs) rather than white, so LZ4 still finds runs and its
  // ratio stays a factor below GZip's instead of collapsing.
  float Haze(double x, double y, double z, std::uint64_t salt) const {
    if (haze_coverage_ <= 0.0) return 0.0f;
    const double clump = FractalNoise(x * 34, y * 34, z * 34 + tau_ * 11.0,
                                      cfg_.seed ^ salt, 2);
    if (clump >= haze_coverage_) return 0.0f;
    // Coarse 1/64 quantization: long equal-value runs keep LZ4 viable.
    return static_cast<float>(
        std::round(std::min(0.05, 0.05 * (1.0 - clump / haze_coverage_)) *
                   64.0) /
        64.0);
  }

  // Asteroid volume fraction at a point.
  float V03(double x, double y, double z) const {
    double d = Distance(x, y, z, 0.5, 0.5, ast_z_);
    double s = (ast_r_ - d) / w_ + 0.5;
    if (post_impact_) {
      for (const Fragment& f : fragments_) {
        const double fx = 0.5 + f.dx * f.speed * dt_;
        const double fy = 0.5 + f.dy * f.speed * dt_;
        const double fz = cfg_.ocean_level +
                          f.dz * f.speed * dt_ * (1.0 - 1.4 * dt_);
        const double fr = ast_r_ * f.radius_scale;
        const double fd = Distance(x, y, z, fx, fy, fz);
        s = std::max(s, (fr - fd) / w_ + 0.5);
      }
    }
    if (s <= 0.0) {
      // Dispersed sediment cloud after impact: asteroid material mixed
      // through a growing volume of the water column. Mostly tiny
      // fractions (rarely crossing even the 0.1 contour) but high enough
      // entropy to pull late-timestep compression ratios down into the
      // paper's range.
      if (post_impact_) {
        const double rho = std::hypot(x - 0.5, y - 0.5);
        const double cloud_r = 0.12 + 0.62 * dt_;
        const double cloud_top = cfg_.ocean_level + 0.05;
        const double cloud_bottom = cfg_.ocean_level - 0.05 - 0.45 * dt_;
        if (rho < cloud_r && z < cloud_top && z > cloud_bottom) {
          const double u = FractalNoise(x * 52, y * 52, z * 52 + tau_ * 5.0,
                                        cfg_.seed ^ 0x88, 3);
          const double fade = 1.0 - rho / cloud_r;
          // Sediment concentrations are capped just under the lowest
          // evaluated contour value (0.1): the cloud adds entropy (the
          // paper's decaying v03 compression ratio) without inflating
          // contour selectivity.
          return Quantize(std::min(0.0898, 0.4 * u * u * fade));
        }
      }
      // Ablated asteroid dust spreading through the atmosphere.
      if (z > cfg_.ocean_level) {
        return Haze(x, y, z, 0x91);
      }
      return 0.0f;
    }
    if (s >= 1.0) {
      // Interior texture grows with time: ablation/breakup mixing.
      if (churn_ > 0.25) {
        const double u =
            FractalNoise(x * 40, y * 40, z * 40 + tau_ * 7, cfg_.seed ^ 0x33, 2);
        if (u < churn_ * 0.5) {
          return Quantize(0.72 + 0.28 * FractalNoise(x * 90, y * 90, z * 90,
                                                     cfg_.seed ^ 0x34, 2));
        }
      }
      return 1.0f;
    }
    return Quantize(s);
  }

  // Ocean surface height at (x, y).
  double SurfaceHeight(double x, double y) const {
    double h = cfg_.ocean_level;
    if (!post_impact_) return h;
    const double rho = std::hypot(x - 0.5, y - 0.5);
    // Expanding ring wave (the tsunami) with decaying amplitude.
    const double front = 0.42 * std::pow(dt_, 0.8);
    const double amp = 0.07 * std::exp(-2.2 * dt_);
    const double sigma = 0.035 + 0.05 * dt_;
    h += amp * std::exp(-((rho - front) * (rho - front)) / (sigma * sigma)) *
         std::cos(10.0 * (rho - front) / sigma);
    // Transient impact cavity.
    const double cavity = 0.11 * std::exp(-dt_ / 0.06);
    h -= cavity * std::exp(-(rho * rho) / (0.07 * 0.07));
    // Choppy ripples grow with time.
    h += 0.012 * churn_ *
         SignedFractalNoise(x * 22, y * 22, tau_ * 4.0, cfg_.seed ^ 0x55, 3);
    return h;
  }

  // Water volume fraction at a point (excludes asteroid volume).
  float V02(double x, double y, double z, float v03) const {
    const double h = SurfaceHeight(x, y);
    const double base = Clamp01((h - z) / w_ + 0.5);
    double v = base;
    // Churn / splash zone around the surface plus the post-impact plume.
    const double dist_to_surface = z - h;
    bool in_zone = std::abs(dist_to_surface) < churn_thickness_;
    double plume = 0.0;
    if (post_impact_) {
      const double rho = std::hypot(x - 0.5, y - 0.5);
      const double plume_r = 0.06 + 0.22 * dt_;
      const double plume_h = 0.30 * std::exp(-1.2 * dt_) + 0.04;
      if (rho < plume_r && dist_to_surface > 0.0 &&
          dist_to_surface < plume_h) {
        in_zone = true;
        plume = 1.0 - rho / plume_r;
      }
    }
    if (in_zone) {
      // Two decoupled noise scales: `body` is smooth and drives where the
      // droplet/air-pocket blobs sit (its sparse level sets are what the
      // contour filter sees, keeping selectivity in the paper's band),
      // while `mist` is fine-grained sub-threshold texture that drives
      // the entropy growth (the paper's decaying compression ratio)
      // without ever crossing the 0.1 contour on its own.
      const double body = FractalNoise(x * 11, y * 11, z * 11 + tau_ * 4.0,
                                       cfg_.seed ^ 0x77, 3);
      const double mist = FractalNoise(x * 85, y * 85, z * 85 + tau_ * 9.0,
                                       cfg_.seed ^ 0x79, 2);
      if (dist_to_surface > 0.0) {
        // Spray: dense water droplets where `body` peaks; higher contour
        // values sit deeper inside the droplets, so they cross fewer
        // cells (paper Fig. 6 trend).
        const double droplet =
            Clamp01((body - 0.74) * 6.0) * (0.7 + 0.3 * plume);
        v = std::max(base, std::min(1.0, 0.085 * mist + droplet));
        v = Quantize(v);
      } else if (dist_to_surface > -0.45 * churn_thickness_) {
        // Churned water below the surface: mostly-pure water with fine
        // bubbles plus occasional entrained air pockets.
        // Bubble texture stays above 0.95 so it never crosses the 0.9
        // contour; only the (sparse) pocket shells do.
        const double pocket = Clamp01((body - 0.70) * 6.0);
        v = std::min(base, 1.0 - 0.04 * mist - 0.58 * pocket);
        v = Quantize(v);
      } else {
        v = Quantize(base);
      }
    } else if (base > 0.0 && base < 1.0) {
      v = Quantize(base);
    } else if (base <= 0.0 && dist_to_surface > 0.0) {
      // Water vapor haze in the open atmosphere (entropy only: values
      // stay far below the 0.1 contour).
      v = Haze(x, y, z, 0x92);
    }
    // The asteroid displaces water.
    return static_cast<float>(v * (1.0 - static_cast<double>(v03)));
  }

  double tau() const { return tau_; }
  double ast_z() const { return ast_z_; }
  double ast_r() const { return ast_r_; }
  bool post_impact() const { return post_impact_; }
  double dt() const { return dt_; }

 private:
  static double Distance(double x, double y, double z, double cx, double cy,
                         double cz) {
    return std::sqrt((x - cx) * (x - cx) + (y - cy) * (y - cy) +
                     (z - cz) * (z - cz));
  }

  ImpactConfig cfg_;
  double tau_;
  double dt_;
  bool post_impact_;
  double w_;
  std::vector<Fragment> fragments_;
  double ast_z_ = 0.0;
  double ast_r_ = 0.0;
  double churn_ = 0.0;
  double churn_thickness_ = 0.0;
  double haze_coverage_ = 0.0;
};

}  // namespace

const std::vector<std::string>& ImpactArrayNames() {
  static const std::vector<std::string> names = {
      "rho", "prs", "tev", "xdt", "ydt", "zdt",
      "snd", "grd", "mat", "v02", "v03"};
  return names;
}

std::vector<std::int64_t> ImpactTimestepLabels(const ImpactConfig& config,
                                               int count) {
  VIZNDP_CHECK(count >= 2);
  std::vector<std::int64_t> labels;
  labels.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    labels.push_back(config.final_timestep * i / (count - 1));
  }
  return labels;
}

grid::Dataset GenerateImpactTimestep(const ImpactConfig& config,
                                     std::int64_t timestep) {
  return GenerateImpactTimestep(config, timestep, ImpactArrayNames());
}

grid::Dataset GenerateImpactTimestep(const ImpactConfig& config,
                                     std::int64_t timestep,
                                     const std::vector<std::string>& arrays) {
  VIZNDP_CHECK_MSG(timestep >= 0 && timestep <= config.final_timestep,
                   "timestep out of range");
  const std::int64_t n = config.n;
  VIZNDP_CHECK_MSG(n >= 4, "impact grid must be at least 4^3");
  const grid::Dims dims{n, n, n};
  const double inv = 1.0 / static_cast<double>(n);
  grid::UniformGeometry geo;
  geo.spacing = {inv, inv, inv};
  grid::Dataset dataset(dims, geo);

  const ImpactField field(config, timestep);
  const auto npoints = static_cast<size_t>(dims.PointCount());

  // v02/v03 drive everything else, so compute them first (even when not
  // requested themselves).
  std::vector<float> v02(npoints), v03(npoints);
  for (std::int64_t k = 0; k < n; ++k) {
    const double z = (static_cast<double>(k) + 0.5) * inv;
    for (std::int64_t j = 0; j < n; ++j) {
      const double y = (static_cast<double>(j) + 0.5) * inv;
      for (std::int64_t i = 0; i < n; ++i) {
        const double x = (static_cast<double>(i) + 0.5) * inv;
        const size_t id = static_cast<size_t>(dims.Index(i, j, k));
        const float a = field.V03(x, y, z);
        v03[id] = a;
        v02[id] = field.V02(x, y, z, a);
      }
    }
  }

  for (const std::string& name : arrays) {
    if (name == "v02") {
      dataset.AddArray(grid::DataArray::FromVector("v02", v02));
      continue;
    }
    if (name == "v03") {
      dataset.AddArray(grid::DataArray::FromVector("v03", v03));
      continue;
    }
    std::vector<float> a(npoints);
    for (std::int64_t k = 0; k < n; ++k) {
      const double z = (static_cast<double>(k) + 0.5) * inv;
      for (std::int64_t j = 0; j < n; ++j) {
        for (std::int64_t i = 0; i < n; ++i) {
          const size_t id = static_cast<size_t>(dims.Index(i, j, k));
          const double water = v02[id];
          const double ast = v03[id];
          const double air = std::max(0.0, 1.0 - water - ast);
          if (name == "rho") {
            a[id] = static_cast<float>(0.00129 * air + 1.0 * water + 3.3 * ast);
          } else if (name == "prs") {
            // Hydrostatic pressure in microbars below the surface.
            const double depth = std::max(0.0, config.ocean_level - z);
            a[id] = static_cast<float>(1.01e6 + 9.8e7 * depth * water);
          } else if (name == "tev") {
            // Hot asteroid, warm splash, cold background.
            a[id] = static_cast<float>(0.025 + 2.2 * ast +
                                       0.3 * water * field.dt() *
                                           (field.post_impact() ? 1.0 : 0.0));
          } else if (name == "xdt" || name == "ydt") {
            const double swirl = (name == "xdt" ? 1.0 : -1.0) * 2.0e4 *
                                 (water + ast) * field.tau();
            a[id] = static_cast<float>(swirl);
          } else if (name == "zdt") {
            // Asteroid falls at ~20 km/s until impact.
            a[id] = static_cast<float>(-2.0e6 * ast *
                                       (field.post_impact() ? 0.2 : 1.0));
          } else if (name == "snd") {
            a[id] = static_cast<float>(3.4e4 * air + 1.48e5 * water +
                                       4.5e5 * ast);
          } else if (name == "grd") {
            // AMR level: finer near material interfaces.
            const bool mixed = (water > 0.0 && water < 1.0) ||
                               (ast > 0.0 && ast < 1.0);
            a[id] = mixed ? 5.0f : (water > 0.0 || ast > 0.0 ? 3.0f : 1.0f);
          } else if (name == "mat") {
            a[id] = ast >= 0.5 ? 3.0f : (water >= 0.5 ? 2.0f : 1.0f);
          } else {
            throw Error("unknown impact array: " + name);
          }
        }
      }
    }
    dataset.AddArray(grid::DataArray::FromVector(name, std::move(a)));
  }
  return dataset;
}

}  // namespace vizndp::sim
