#include "rpc/trace_wire.h"

#include "rpc/protocol.h"

namespace vizndp::rpc {

using msgpack::Array;
using msgpack::Map;
using msgpack::Value;

Value ContextToValue(const obs::TraceContext& ctx) {
  Map m;
  m.emplace_back(Value(kCtxTraceIdKey), Value(ctx.trace_id));
  m.emplace_back(Value(kCtxSpanIdKey), Value(ctx.span_id));
  return Value(std::move(m));
}

obs::TraceContext ContextFromValue(const Value& v) {
  obs::TraceContext ctx;
  if (!v.Is<Map>()) return ctx;
  const Value* trace = v.Find(kCtxTraceIdKey);
  if (trace == nullptr || !trace->IsInteger()) return ctx;
  ctx.trace_id = trace->AsUint();
  if (const Value* span = v.Find(kCtxSpanIdKey); span != nullptr &&
      span->IsInteger()) {
    ctx.span_id = span->AsUint();
  }
  ctx.sampled = true;
  return ctx;
}

Value EventsToValue(const std::vector<obs::DrainedEvent>& events) {
  Array out;
  out.reserve(events.size());
  for (const obs::DrainedEvent& e : events) {
    Map m;
    m.emplace_back(Value("name"), Value(e.name));
    m.emplace_back(Value("track"), Value(e.track));
    m.emplace_back(Value("ts"), Value(e.start_us));
    m.emplace_back(Value("dur"), Value(e.dur_us));
    if (e.trace_id != 0) {
      m.emplace_back(Value("trace"), Value(e.trace_id));
      m.emplace_back(Value("span"), Value(e.span_id));
      m.emplace_back(Value("parent"), Value(e.parent_span_id));
    }
    out.push_back(Value(std::move(m)));
  }
  return Value(std::move(out));
}

std::vector<obs::DrainedEvent> EventsFromValue(const Value& v) {
  std::vector<obs::DrainedEvent> out;
  if (!v.Is<Array>()) return out;
  for (const Value& entry : v.As<Array>()) {
    if (!entry.Is<Map>()) continue;
    obs::DrainedEvent e;
    e.name = entry.At("name").As<std::string>();
    e.track = entry.At("track").As<std::string>();
    e.start_us = entry.At("ts").AsUint();
    e.dur_us = entry.At("dur").AsUint();
    if (const Value* t = entry.Find("trace")) e.trace_id = t->AsUint();
    if (const Value* s = entry.Find("span")) e.span_id = s->AsUint();
    if (const Value* p = entry.Find("parent")) {
      e.parent_span_id = p->AsUint();
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace vizndp::rpc
