// msgpack-rpc wire protocol (the format rpclib speaks):
//   request:  [0, msgid, method(str), params(array)]
//   response: [1, msgid, error(nil|str), result]
// Each message is one transport frame.
//
// The error slot is a plain string, so typed errors that must survive
// the wire travel as well-known prefixes: the server prepends one, the
// client strips it and rethrows the matching exception type. Only the
// conditions a caller *acts on differently* get a prefix — busy (always
// retryable: the handler never ran) and corrupt data (never retryable
// against the same store, but eligible for the baseline fallback).
#pragma once

#include <cstdint>
#include <string_view>

namespace vizndp::rpc {

inline constexpr std::int64_t kRequestType = 0;
inline constexpr std::int64_t kResponseType = 1;

inline constexpr std::string_view kBusyErrorPrefix = "!busy: ";
inline constexpr std::string_view kCorruptErrorPrefix = "!corrupt: ";

}  // namespace vizndp::rpc
