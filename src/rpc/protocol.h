// msgpack-rpc wire protocol (the format rpclib speaks):
//   request:  [0, msgid, method(str), params(array)]
//   response: [1, msgid, error(nil|str), result]
// Each message is one transport frame.
#pragma once

#include <cstdint>

namespace vizndp::rpc {

inline constexpr std::int64_t kRequestType = 0;
inline constexpr std::int64_t kResponseType = 1;

}  // namespace vizndp::rpc
