// msgpack-rpc wire protocol (the format rpclib speaks):
//   request:  [0, msgid, method(str), params(array)]
//   response: [1, msgid, error(nil|str), result]
// Each message is one transport frame.
//
// The error slot is a plain string, so typed errors that must survive
// the wire travel as well-known prefixes: the server prepends one, the
// client strips it and rethrows the matching exception type. Only the
// conditions a caller *acts on differently* get a prefix — busy (always
// retryable: the handler never ran) and corrupt data (never retryable
// against the same store, but eligible for the baseline fallback).
//
// Distributed tracing rides the same frames as OPTIONAL trailing
// elements, so both directions stay backward compatible:
//
//   request:  [0, msgid, method, params, ctx(map)?]
//   response: [1, msgid, error, result, piggyback(map)?]
//
// The ctx map ({"trace_id": u64, "span_id": u64}) is attached only when
// the calling thread carries a *sampled* TraceContext — default traffic
// keeps the original 4-element shape, which is why an old server (which
// rejects any other arity) still interoperates with a new client. A new
// server accepts both arities and simply never sees a ctx from an old
// client. The piggyback map ({"t_recv": µs, "t_send": µs, "spans":
// [...]}) is attached to the reply only when the request carried a ctx:
// t_recv/t_send are the server's receive/send timestamps (its own clock;
// see obs/trace_merge.h for the midpoint alignment) and "spans" are the
// request's server-side spans, *moved* out of the server tracer so a
// shared in-proc tracer never holds duplicates.
#pragma once

#include <cstdint>
#include <string_view>

namespace vizndp::rpc {

inline constexpr std::int64_t kRequestType = 0;
inline constexpr std::int64_t kResponseType = 1;

// Streaming extension (backward compatible: only handlers bound as
// streaming ever emit these, and only when the transport-aware dispatch
// path is in use — a request to an old server never sees them):
//
//   chunk:  [2, msgid, chunk(map)]     server -> client, zero or more,
//                                      all before the closing response
//   cancel: [3, msgid]                 client -> server, at most once
//
// A stream is: chunk* then one ordinary [1, msgid, error, result]
// response — the terminal frame. Reusing the response type for the
// terminal frame keeps every error path (typed prefixes, piggybacked
// trace spans) identical to the monolithic protocol. The chunk map's
// schema belongs to the method (see ndp/protocol.h for ndp.select's);
// the rpc layer treats it as opaque. A cancel frame asks the server to
// stop producing: the server abandons remaining work and closes the
// stream with a terminal error response carrying the cancelled prefix.
inline constexpr std::int64_t kChunkType = 2;
inline constexpr std::int64_t kCancelType = 3;

inline constexpr std::string_view kBusyErrorPrefix = "!busy: ";
inline constexpr std::string_view kCorruptErrorPrefix = "!corrupt: ";
// Storage I/O failures reported by the remote store, split the same way
// the local storage layer splits them: transient (retrying the same call
// may heal — a flaky device under the remote) vs permanent (missing
// object, dead device; retrying rereads the same failure).
inline constexpr std::string_view kIoErrorPrefix = "!io: ";
inline constexpr std::string_view kTransientIoErrorPrefix = "!io_transient: ";
// Terminal response of a stream the client cancelled: acknowledged, not
// an error the client should surface (it asked for the abort).
inline constexpr std::string_view kCancelledErrorPrefix = "!cancelled: ";

// Keys of the request ctx map.
inline constexpr const char* kCtxTraceIdKey = "trace_id";
inline constexpr const char* kCtxSpanIdKey = "span_id";

// Keys of the response piggyback map.
inline constexpr const char* kPiggybackRecvKey = "t_recv";
inline constexpr const char* kPiggybackSendKey = "t_send";
inline constexpr const char* kPiggybackSpansKey = "spans";

}  // namespace vizndp::rpc
