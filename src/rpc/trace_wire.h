// msgpack marshalling for the trace material that crosses the RPC wire:
// the request ctx map, the reply piggyback's span list, and the
// ndp.trace drain all share these shapes. Span maps carry the same
// name/track/ts/dur keys the pre-tracing ndp.trace used, plus the
// distributed identity ("trace"/"span"/"parent"); readers tolerate the
// ids being absent so a new client can drain an old server.
#pragma once

#include <vector>

#include "msgpack/value.h"
#include "obs/context.h"
#include "obs/trace.h"

namespace vizndp::rpc {

// {"trace_id": u64, "span_id": u64} — the request's 5th element.
msgpack::Value ContextToValue(const obs::TraceContext& ctx);

// Inverse; returns an invalid (trace_id 0) context when `v` is not a
// well-formed ctx map. A parsed context is sampled by definition — the
// sender only attaches sampled contexts.
obs::TraceContext ContextFromValue(const msgpack::Value& v);

// Span list as an array of maps, and back. Unknown keys are ignored,
// missing id keys default to 0 (untagged).
msgpack::Value EventsToValue(const std::vector<obs::DrainedEvent>& events);
std::vector<obs::DrainedEvent> EventsFromValue(const msgpack::Value& v);

}  // namespace vizndp::rpc
