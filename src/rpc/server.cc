#include "rpc/server.h"

#include <memory>
#include <optional>
#include <thread>

#include "common/error.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"
#include "obs/context.h"
#include "obs/windowed.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "rpc/protocol.h"
#include "rpc/trace_wire.h"

namespace vizndp::rpc {

namespace {

// How often a serving loop wakes up to notice Server::Stop(). Without a
// tick, a worker blocked in Receive() on an idle connection would pin
// TcpRpcServer::Stop() forever.
constexpr std::chrono::milliseconds kServeTick{50};

// StreamSink bound to one request's transport and msgid. Lives entirely
// on the dispatch thread: the serve loop is parked inside Dispatch while
// the handler runs, so Send/Receive here never race it.
class TransportStreamSink : public StreamSink {
 public:
  TransportStreamSink(net::Transport& transport, std::uint64_t msgid)
      : transport_(transport), msgid_(msgid) {}

  bool Emit(const msgpack::Value& chunk) override {
    PollCancel();
    if (cancelled_ || dead_) return false;
    msgpack::Array frame;
    frame.emplace_back(kChunkType);
    frame.emplace_back(msgid_);
    frame.push_back(chunk);
    try {
      transport_.Send(msgpack::Encode(msgpack::Value(std::move(frame))));
    } catch (const Error&) {
      dead_ = true;  // peer vanished mid-stream: stop producing
      return false;
    }
    ++chunks_emitted_;
    // Give a consumer sharing this core a scheduling slot between
    // chunks. Emitting is much cheaper than consuming, so without the
    // yield a single-core box runs the whole stream — every chunk plus
    // the terminal — before the client thread ever wakes, and a cancel
    // sent after the first chunk can only lose the race. One yield per
    // chunk is noise at the production chunk size.
    std::this_thread::yield();
    return true;
  }

  bool Cancelled() const override { return cancelled_ || dead_; }

  // Non-blocking drain of frames the client pushed while the handler
  // computed a batch: a cancel frame for this stream flips cancelled_.
  // The already-expired deadline never blocks, and on an idle connection
  // it fires at a frame boundary, so the transport stays framed.
  void PollCancel() {
    if (cancelled_ || dead_) return;
    for (;;) {
      Bytes frame;
      try {
        frame = transport_.Receive(std::chrono::steady_clock::now());
      } catch (const TimeoutError&) {
        return;  // nothing waiting
      } catch (const Error&) {
        dead_ = true;  // peer closed mid-stream: abandon remaining work
        return;
      }
      try {
        const msgpack::Value value = msgpack::Decode(frame);
        const auto& fields = value.As<msgpack::Array>();
        if (fields.size() >= 2 && fields[0].AsInt() == kCancelType &&
            fields[1].AsUint() == msgid_) {
          cancelled_ = true;
          return;
        }
      } catch (const Error&) {
        dead_ = true;  // garbage between frames poisons this stream only
        return;
      }
      // Anything else (a stale cancel for an earlier stream) is dropped:
      // a client never pipelines a new request before the terminal frame.
    }
  }

 private:
  net::Transport& transport_;
  const std::uint64_t msgid_;
  bool cancelled_ = false;
  bool dead_ = false;
};

}  // namespace

bool MemoryBudget::TryReserve(std::uint64_t bytes) {
  const std::uint64_t limit = limit_.load(std::memory_order_relaxed);
  std::uint64_t used = in_use_.load(std::memory_order_relaxed);
  for (;;) {
    if (limit > 0 && (bytes > limit || used > limit - bytes)) return false;
    if (in_use_.compare_exchange_weak(used, used + bytes,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      if (gauge_ != nullptr) gauge_->Set(static_cast<double>(used + bytes));
      return true;
    }
  }
}

void MemoryBudget::Release(std::uint64_t bytes) {
  const std::uint64_t before =
      in_use_.fetch_sub(bytes, std::memory_order_acq_rel);
  if (gauge_ != nullptr) gauge_->Set(static_cast<double>(before - bytes));
}

MemoryBudget::Reservation::Reservation(MemoryBudget& budget,
                                       std::uint64_t bytes)
    : budget_(&budget), bytes_(bytes) {
  if (!budget.TryReserve(bytes)) {
    budget_ = nullptr;
    throw BusyError("memory budget exhausted (" + std::to_string(bytes) +
                    " bytes requested, " + std::to_string(budget.in_use()) +
                    "/" + std::to_string(budget.limit()) + " in use)");
  }
}

MemoryBudget::Reservation::~Reservation() {
  if (budget_ != nullptr) budget_->Release(bytes_);
}

MemoryBudget::Reservation::Reservation(Reservation&& other) noexcept
    : budget_(other.budget_), bytes_(other.bytes_) {
  other.budget_ = nullptr;
  other.bytes_ = 0;
}

MemoryBudget::Reservation& MemoryBudget::Reservation::operator=(
    Reservation&& other) noexcept {
  if (this != &other) {
    if (budget_ != nullptr) budget_->Release(bytes_);
    budget_ = other.budget_;
    bytes_ = other.bytes_;
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void Server::SetOptions(const ServerOptions& options) {
  options_ = options;
  mem_budget_.SetLimit(options.mem_budget_bytes);
  mem_budget_.SetGauge(&metrics_.GetGauge("rpc_mem_budget_used_bytes"));
}

Server::Bound& Server::BindCommon(const std::string& method) {
  Bound bound;
  const obs::Labels labels = {{"method", method}};
  bound.requests = &metrics_.GetCounter("rpc_requests_total", labels);
  bound.errors = &metrics_.GetCounter("rpc_errors_total", labels);
  // Windowed: scrapes see rpc_dispatch_seconds{method} (cumulative)
  // plus rpc_dispatch_seconds_window{method} for the last ~10 s.
  bound.latency = &metrics_.GetWindowedHistogram(
      "rpc_dispatch_seconds", obs::LatencyBounds(), labels);
  const auto [it, inserted] = handlers_.emplace(method, std::move(bound));
  VIZNDP_CHECK_MSG(inserted, "duplicate RPC method '" + method + "'");
  return it->second;
}

void Server::Bind(const std::string& method, Handler handler) {
  BindCommon(method).handler = std::move(handler);
}

void Server::BindStreaming(const std::string& method,
                           StreamingHandler handler) {
  BindCommon(method).streaming = std::move(handler);
}

std::vector<Server::InflightRequest> Server::InflightSnapshot() const {
  std::lock_guard<std::mutex> lock(inflight_table_mu_);
  std::vector<InflightRequest> out;
  out.reserve(inflight_table_.size());
  for (const auto& [token, req] : inflight_table_) out.push_back(req);
  return out;
}

Bytes Server::Dispatch(ByteSpan request_frame) {
  return Dispatch(request_frame, nullptr);
}

Bytes Server::Dispatch(ByteSpan request_frame, net::Transport* transport) {
  // Receive timestamp for the reply piggyback (this server's clock; the
  // client aligns it with the NTP midpoint — see obs/trace_merge.h).
  const std::uint64_t t_recv = obs::GlobalTracer().NowMicros();
  msgpack::Value request = msgpack::Decode(request_frame);
  const auto& fields = request.As<msgpack::Array>();
  if (!fields.empty() && fields[0].AsInt() == kCancelType) {
    // A cancel frame that outlived its stream (the terminal response was
    // already sent): nothing to do, nothing to answer.
    return Bytes{};
  }
  if (fields.size() < 4 || fields[0].AsInt() != kRequestType) {
    throw RpcError("malformed RPC request");
  }
  const std::uint64_t msgid = fields[1].AsUint();
  const std::string& method = fields[2].As<std::string>();
  const auto& params = fields[3].As<msgpack::Array>();
  // Optional 5th element: the caller's trace context. Old clients send
  // 4-element frames and land here with an invalid (untraced) context;
  // anything malformed degrades to untraced rather than failing the call.
  obs::TraceContext ctx;
  if (fields.size() >= 5) ctx = ContextFromValue(fields[4]);
  std::optional<obs::ScopedTraceContext> trace_scope;
  if (ctx.valid()) trace_scope.emplace(ctx);

  obs::Span span("rpc.dispatch:" + method);
  // Counted before the handler runs so a scrape taken *inside* a handler
  // (ndp.metrics observing itself) sees consistent totals.
  requests_total_->Increment();
  msgpack::Value result;
  std::string error;
  const auto it = handlers_.find(method);
  bool ran_handler = false;
  if (draining_.load(std::memory_order_acquire)) {
    // Shed before the handler runs: the caller can safely retry against
    // another (or restarted) server even for non-idempotent methods.
    error = std::string(kBusyErrorPrefix) + "server draining";
    busy_rejected_->Increment();
    obs::GlobalEventLog().Append("rpc.shed",
                                 "reason=draining method=" + method);
  } else if (it == handlers_.end()) {
    error = "unknown method '" + method + "'";
    metrics_.GetCounter("rpc_unknown_method_total").Increment();
    obs::GlobalEventLog().Append("rpc.unknown_method", "method=" + method);
  } else {
    const int now_inflight =
        inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    inflight_gauge_->Set(static_cast<double>(now_inflight));
    if (options_.max_inflight > 0 && now_inflight > options_.max_inflight) {
      error = std::string(kBusyErrorPrefix) + "too many in-flight requests (" +
              std::to_string(options_.max_inflight) + " allowed)";
      busy_rejected_->Increment();
      obs::GlobalEventLog().Append("rpc.shed",
                                   "reason=inflight method=" + method);
    } else {
      ran_handler = true;
      it->second.requests->Increment();
      std::uint64_t inflight_token;
      {
        std::lock_guard<std::mutex> lock(inflight_table_mu_);
        inflight_token = next_inflight_token_++;
        inflight_table_.emplace(
            inflight_token, InflightRequest{method, ctx.trace_id, t_recv});
      }
      std::unique_ptr<TransportStreamSink> sink;
      if (transport != nullptr && it->second.streaming) {
        sink = std::make_unique<TransportStreamSink>(*transport, msgid);
      }
      try {
        result = it->second.streaming
                     ? it->second.streaming(params, sink.get())
                     : it->second.handler(params);
        if (sink != nullptr && sink->Cancelled()) {
          // The client asked for the abort (or vanished): acknowledge
          // with a typed terminal instead of a half-built result.
          error = std::string(kCancelledErrorPrefix) + "stream cancelled";
          result = msgpack::Value();
        }
      } catch (const BusyError& e) {
        if (sink != nullptr && sink->chunks_emitted() > 0) {
          // Invariant (overload_test pins it): `!busy:` means "the
          // handler never ran, retry blindly". A stream that already
          // emitted chunks has run, so a late budget failure must not
          // masquerade as a shed — it becomes an ordinary handler error
          // and the client resumes from its cursor instead of retrying
          // the whole call.
          error = std::string("stream failed mid-flight: ") + e.what();
          it->second.errors->Increment();
          obs::GlobalEventLog().Append("rpc.handler_error",
                                       "method=" + method);
        } else {
          // Resource budget shed inside the handler, before any effect:
          // still always retryable from the client's point of view.
          error = std::string(kBusyErrorPrefix) + e.what();
          busy_rejected_->Increment();
          obs::GlobalEventLog().Append("rpc.shed",
                                       "reason=budget method=" + method);
        }
      } catch (const CorruptDataError& e) {
        // Typed so the client can distinguish "your data is bad" (fall
        // back to baseline) from generic handler failure.
        error = std::string(kCorruptErrorPrefix) + e.what();
        it->second.errors->Increment();
        obs::GlobalEventLog().Append("rpc.corrupt_reply",
                                     "method=" + method);
      } catch (const TransientIoError& e) {
        // Typed + ordered before IoError (its base): the client may
        // retry a transient storage failure, never a permanent one.
        error = std::string(kTransientIoErrorPrefix) + e.what();
        it->second.errors->Increment();
        obs::GlobalEventLog().Append("rpc.io_reply",
                                     "method=" + method + " transient=1");
      } catch (const IoError& e) {
        error = std::string(kIoErrorPrefix) + e.what();
        it->second.errors->Increment();
        obs::GlobalEventLog().Append("rpc.io_reply", "method=" + method);
      } catch (const std::exception& e) {
        error = std::string("handler failed: ") + e.what();
        it->second.errors->Increment();
        obs::GlobalEventLog().Append("rpc.handler_error",
                                     "method=" + method);
      }
      {
        std::lock_guard<std::mutex> lock(inflight_table_mu_);
        inflight_table_.erase(inflight_token);
      }
    }
    const int after = inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    inflight_gauge_->Set(static_cast<double>(after));
    if (after == 0 && draining_.load(std::memory_order_acquire)) {
      // Empty critical section: pairs with the predicate check in Stop()
      // so the last decrement cannot slip between its check and wait.
      { std::lock_guard<std::mutex> lock(drain_mu_); }
      drain_cv_.notify_all();
    }
  }
  span.End();
  if (ran_handler) {
    it->second.latency->Observe(span.ElapsedSeconds());
    // A handler cannot be preempted mid-run, but one that blew its
    // budget must not masquerade as a success: the caller gets a typed
    // error and the overrun is visible in metrics.
    const double deadline_s =
        std::chrono::duration<double>(options_.request_deadline).count();
    if (deadline_s > 0 && error.empty() &&
        span.ElapsedSeconds() > deadline_s) {
      error = "deadline exceeded in '" + method + "'";
      result = msgpack::Value();
      metrics_.GetCounter("rpc_deadline_exceeded_total", {{"method", method}})
          .Increment();
      obs::GlobalEventLog().Append("rpc.deadline", "method=" + method);
    }
  }

  msgpack::Array response;
  response.emplace_back(kResponseType);
  response.emplace_back(msgid);
  response.emplace_back(error.empty() ? msgpack::Value(msgpack::Nil{})
                                      : msgpack::Value(std::move(error)));
  response.push_back(std::move(result));
  if (ctx.valid()) {
    // Reply piggyback: the server's receive/send timestamps plus this
    // request's spans, *moved* out of the tracer (subtree under the
    // request's ctx span) so a shared in-proc tracer keeps exactly one
    // copy. Busy/error replies carry it too — failed attempts matter
    // most in a trace.
    msgpack::Map piggyback;
    piggyback.emplace_back(msgpack::Value(kPiggybackRecvKey),
                           msgpack::Value(t_recv));
    piggyback.emplace_back(msgpack::Value(kPiggybackSendKey),
                           msgpack::Value(obs::GlobalTracer().NowMicros()));
    piggyback.emplace_back(
        msgpack::Value(kPiggybackSpansKey),
        EventsToValue(obs::GlobalTracer().ExtractSubtree(ctx.trace_id,
                                                         ctx.span_id)));
    response.push_back(msgpack::Value(std::move(piggyback)));
  }
  return msgpack::Encode(msgpack::Value(std::move(response)));
}

bool Server::Stop() {
  draining_.store(true, std::memory_order_release);
  bool drained;
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drained = drain_cv_.wait_for(lock, options_.drain_deadline, [this] {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  if (!drained) {
    metrics_.GetCounter("rpc_drain_timeouts_total").Increment();
    obs::GlobalEventLog().Append(
        "rpc.drain_timeout",
        "inflight=" + std::to_string(inflight_.load(
                          std::memory_order_acquire)));
  }
  stopped_.store(true, std::memory_order_release);
  return drained;
}

void Server::ServeTransport(net::Transport& transport) {
  // Dispatch spans from this thread render on the "server" trace track.
  obs::GlobalTracer().SetThreadTrack("server");
  for (;;) {
    // Checked every round, not only on an idle tick: a peer that sends
    // faster than kServeTick (a 20ms health prober, say) would otherwise
    // keep this loop serving a stopped server forever, and whoever is
    // joining the worker blocks with it.
    if (stopped_.load(std::memory_order_acquire)) {
      transport.Close();
      return;
    }
    Bytes request;
    try {
      // Ticked rather than fully blocking so a stopped server's worker
      // threads become joinable even when their connections sit idle.
      request = transport.Receive(net::DeadlineAfter(kServeTick));
    } catch (const TimeoutError&) {
      continue;
    } catch (const Error&) {
      return;  // peer closed
    }
    if (request.size() > options_.max_frame_bytes) {
      // An in-proc peer can bypass the TCP-level frame cap, so enforce it
      // here too; the connection is poisoned, not the server.
      metrics_.GetCounter("rpc_oversize_frames_total").Increment();
      obs::GlobalEventLog().Append(
          "rpc.oversize_frame", "bytes=" + std::to_string(request.size()));
      transport.Close();
      return;
    }
    Bytes response;
    try {
      response = Dispatch(request, &transport);
    } catch (const Error&) {
      // Undecodable/malformed frame: drop the connection, keep serving
      // others. Before this guard, one garbage frame killed the thread.
      metrics_.GetCounter("rpc_malformed_frames_total").Increment();
      obs::GlobalEventLog().Append("rpc.malformed_frame");
      transport.Close();
      return;
    }
    if (response.empty()) continue;  // stray cancel frame: no reply owed
    try {
      transport.Send(response);
    } catch (const Error&) {
      return;  // peer vanished between request and reply
    }
  }
}

TcpRpcServer::TcpRpcServer(Server& server, std::uint16_t port)
    : server_(server), listener_(port) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void TcpRpcServer::AcceptLoop() {
  for (;;) {
    net::TransportPtr conn;
    try {
      conn = listener_.Accept();
    } catch (const Error&) {
      return;  // listener torn down
    }
    if (stopping_.load()) {
      return;
    }
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.emplace_back(
        [this, c = std::shared_ptr<net::Transport>(std::move(conn))] {
          server_.ServeTransport(*c);
        });
  }
}

void TcpRpcServer::Stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  // Drain first: in-flight handlers finish (bounded by the server's drain
  // deadline), new requests get busy replies, serve loops start exiting.
  server_.Stop();
  stopping_.store(true);
  // Wake the blocking accept() with a throwaway connection.
  try {
    net::TcpConnect("127.0.0.1", listener_.port());
  } catch (const Error&) {
    // Listener already failed; the accept thread has exited.
  }
  accept_thread_.join();
  std::lock_guard<std::mutex> lock(workers_mu_);
  for (std::thread& t : workers_) {
    t.join();
  }
}

TcpRpcServer::~TcpRpcServer() { Stop(); }

}  // namespace vizndp::rpc
