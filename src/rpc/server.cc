#include "rpc/server.h"

#include "common/error.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"
#include "obs/trace.h"
#include "rpc/protocol.h"

namespace vizndp::rpc {

void Server::Bind(const std::string& method, Handler handler) {
  Bound bound;
  bound.handler = std::move(handler);
  const obs::Labels labels = {{"method", method}};
  bound.requests = &metrics_.GetCounter("rpc_requests_total", labels);
  bound.errors = &metrics_.GetCounter("rpc_errors_total", labels);
  bound.latency = &metrics_.GetHistogram("rpc_dispatch_seconds",
                                         obs::LatencyBounds(), labels);
  VIZNDP_CHECK_MSG(handlers_.emplace(method, std::move(bound)).second,
                   "duplicate RPC method '" + method + "'");
}

Bytes Server::Dispatch(ByteSpan request_frame) {
  msgpack::Value request = msgpack::Decode(request_frame);
  const auto& fields = request.As<msgpack::Array>();
  if (fields.size() != 4 || fields[0].AsInt() != kRequestType) {
    throw RpcError("malformed RPC request");
  }
  const std::uint64_t msgid = fields[1].AsUint();
  const std::string& method = fields[2].As<std::string>();
  const auto& params = fields[3].As<msgpack::Array>();

  obs::Span span("rpc.dispatch:" + method);
  // Counted before the handler runs so a scrape taken *inside* a handler
  // (ndp.metrics observing itself) sees consistent totals.
  requests_total_->Increment();
  msgpack::Value result;
  std::string error;
  const auto it = handlers_.find(method);
  if (it == handlers_.end()) {
    error = "unknown method '" + method + "'";
    metrics_.GetCounter("rpc_unknown_method_total").Increment();
  } else {
    it->second.requests->Increment();
    try {
      result = it->second.handler(params);
    } catch (const std::exception& e) {
      error = std::string("handler failed: ") + e.what();
      it->second.errors->Increment();
    }
  }
  span.End();
  if (it != handlers_.end()) {
    it->second.latency->Observe(span.ElapsedSeconds());
    // A handler cannot be preempted mid-run, but one that blew its
    // budget must not masquerade as a success: the caller gets a typed
    // error and the overrun is visible in metrics.
    const double deadline_s =
        std::chrono::duration<double>(options_.request_deadline).count();
    if (deadline_s > 0 && error.empty() &&
        span.ElapsedSeconds() > deadline_s) {
      error = "deadline exceeded in '" + method + "'";
      result = msgpack::Value();
      metrics_.GetCounter("rpc_deadline_exceeded_total", {{"method", method}})
          .Increment();
    }
  }

  msgpack::Array response;
  response.emplace_back(kResponseType);
  response.emplace_back(msgid);
  response.emplace_back(error.empty() ? msgpack::Value(msgpack::Nil{})
                                      : msgpack::Value(std::move(error)));
  response.push_back(std::move(result));
  return msgpack::Encode(msgpack::Value(std::move(response)));
}

void Server::ServeTransport(net::Transport& transport) {
  // Dispatch spans from this thread render on the "server" trace track.
  obs::GlobalTracer().SetThreadTrack("server");
  for (;;) {
    Bytes request;
    try {
      request = transport.Receive();
    } catch (const Error&) {
      return;  // peer closed
    }
    if (request.size() > options_.max_frame_bytes) {
      // An in-proc peer can bypass the TCP-level frame cap, so enforce it
      // here too; the connection is poisoned, not the server.
      metrics_.GetCounter("rpc_oversize_frames_total").Increment();
      transport.Close();
      return;
    }
    Bytes response;
    try {
      response = Dispatch(request);
    } catch (const Error&) {
      // Undecodable/malformed frame: drop the connection, keep serving
      // others. Before this guard, one garbage frame killed the thread.
      metrics_.GetCounter("rpc_malformed_frames_total").Increment();
      transport.Close();
      return;
    }
    try {
      transport.Send(response);
    } catch (const Error&) {
      return;  // peer vanished between request and reply
    }
  }
}

TcpRpcServer::TcpRpcServer(Server& server, std::uint16_t port)
    : server_(server), listener_(port) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void TcpRpcServer::AcceptLoop() {
  for (;;) {
    net::TransportPtr conn;
    try {
      conn = listener_.Accept();
    } catch (const Error&) {
      return;  // listener torn down
    }
    if (stopping_.load()) {
      return;
    }
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.emplace_back(
        [this, c = std::shared_ptr<net::Transport>(std::move(conn))] {
          server_.ServeTransport(*c);
        });
  }
}

TcpRpcServer::~TcpRpcServer() {
  stopping_.store(true);
  // Wake the blocking accept() with a throwaway connection.
  try {
    net::TcpConnect("127.0.0.1", listener_.port());
  } catch (const Error&) {
    // Listener already failed; the accept thread has exited.
  }
  accept_thread_.join();
  std::lock_guard<std::mutex> lock(workers_mu_);
  for (std::thread& t : workers_) {
    t.join();
  }
}

}  // namespace vizndp::rpc
