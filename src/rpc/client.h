// RPC client: synchronous named calls over a Transport, mirroring
// rpclib's `client.call(name, args...)`.
#pragma once

#include <mutex>
#include <string>

#include "msgpack/value.h"
#include "net/transport.h"

namespace vizndp::rpc {

class Client {
 public:
  explicit Client(net::TransportPtr transport)
      : transport_(std::move(transport)) {}

  // Calls `method` with positional `params`; blocks for the reply.
  // Throws RpcError when the server reports an error or the reply is
  // malformed. Thread-safe (calls are serialized).
  msgpack::Value Call(const std::string& method,
                      msgpack::Array params = {});

 private:
  std::mutex mu_;
  net::TransportPtr transport_;
  std::uint64_t next_msgid_ = 1;
};

}  // namespace vizndp::rpc
