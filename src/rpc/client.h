// RPC client: synchronous named calls over a Transport, mirroring
// rpclib's `client.call(name, args...)`, plus the fault-tolerance layer:
// per-call deadlines (TimeoutError), retry with exponential backoff for
// idempotent calls, and stale-reply discarding so a duplicated or
// late-arriving response frame never corrupts a later call.
#pragma once

#include <chrono>
#include <functional>
#include <mutex>
#include <string>

#include "msgpack/value.h"
#include "net/retry.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace vizndp::rpc {

struct CallOptions {
  // Per-call receive deadline; 0 falls back to the client default (whose
  // own 0 means block forever, the pre-fault-tolerance behaviour).
  std::chrono::milliseconds timeout{0};
  // Only idempotent calls may be retried: a retry re-executes the
  // handler, which must be harmless. All NDP reads qualify; writes
  // (store.put) must leave this false.
  bool idempotent = false;
};

class Client {
 public:
  explicit Client(net::TransportPtr transport)
      : transport_(std::move(transport)) {}

  // Default deadline applied when CallOptions.timeout is 0.
  void SetDefaultTimeout(std::chrono::milliseconds timeout) {
    std::lock_guard<std::mutex> lock(mu_);
    default_timeout_ = timeout;
  }

  // Retry schedule for idempotent calls (max_attempts = 1 disables).
  void SetRetryPolicy(const net::RetryPolicy& policy) {
    std::lock_guard<std::mutex> lock(mu_);
    retry_ = policy;
  }

  // Where rpc_retries_total / rpc_timeouts_total / rpc_stale_replies_total
  // land; defaults to obs::DefaultRegistry(). Must outlive the client.
  void SetMetrics(obs::Registry* metrics) {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
  }

  // Calls `method` with positional `params`; blocks for the reply.
  // Throws RpcError when the server reports an error or the reply is
  // malformed, TimeoutError when every attempt ran past its deadline,
  // and PeerClosedError when the transport died and retries (if any)
  // were exhausted. Thread-safe (calls are serialized).
  msgpack::Value Call(const std::string& method, msgpack::Array params = {},
                      const CallOptions& options = {});

  // Invoked once per chunk frame with the decoded chunk map. Return
  // false to cancel the stream: the client sends one cancel frame and
  // drains to the terminal response.
  using ChunkCallback = std::function<bool(const msgpack::Value& chunk)>;

  struct StreamCallOptions {
    // Overall deadline for the whole stream (0 = client default).
    std::chrono::milliseconds timeout{0};
    // Progress deadline: the longest wait for the *next* frame before
    // the stream counts as wedged (StreamStallError); 0 disables. Kept
    // distinct from `timeout` — a healthy many-chunk stream may
    // legitimately outlive one monolithic call budget.
    std::chrono::milliseconds chunk_timeout{0};
  };

  // Streaming call (protocol.h chunk frames): blocks until the terminal
  // response, invoking `on_chunk` per chunk. Single attempt by design —
  // mid-stream recovery is the caller's job, because only the caller
  // holds the resume cursor. A server that ignores the stream request
  // simply sends a monolithic response, which is returned with zero
  // chunk callbacks. Throws StreamStallError (chunk_timeout elapsed,
  // overall deadline not yet reached), TimeoutError (overall deadline),
  // or the same typed errors as Call. When the stream ends because
  // `on_chunk` returned false, `*cancelled_out` is set and the returned
  // value is Nil. Thread-safe (serialized with Call).
  msgpack::Value CallStreaming(const std::string& method,
                               msgpack::Array params,
                               const StreamCallOptions& options,
                               const ChunkCallback& on_chunk,
                               bool* cancelled_out = nullptr);

 private:
  msgpack::Value CallOnce(const std::string& method,
                          const msgpack::Array& params,
                          net::Deadline deadline);
  obs::Registry& metrics() {
    return metrics_ != nullptr ? *metrics_ : obs::DefaultRegistry();
  }

  std::mutex mu_;
  net::TransportPtr transport_;
  std::uint64_t next_msgid_ = 1;
  std::chrono::milliseconds default_timeout_{0};
  net::RetryPolicy retry_;
  obs::Registry* metrics_ = nullptr;
};

}  // namespace vizndp::rpc
