#include "rpc/client.h"

#include "common/error.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"
#include "obs/trace.h"
#include "rpc/protocol.h"

namespace vizndp::rpc {

msgpack::Value Client::Call(const std::string& method, msgpack::Array params) {
  std::lock_guard<std::mutex> lock(mu_);
  // One span per round trip on the "client" trace track; the matching
  // server-side "rpc.dispatch:" span nests inside it, so the gap between
  // the two is the transfer + queueing cost.
  obs::Tracer& tracer = obs::GlobalTracer();
  if (tracer.enabled()) tracer.SetThreadTrack("client");
  obs::Span span("rpc.call:" + method, tracer);
  const std::uint64_t msgid = next_msgid_++;

  msgpack::Array request;
  request.emplace_back(kRequestType);
  request.emplace_back(msgid);
  request.emplace_back(method);
  request.push_back(msgpack::Value(std::move(params)));
  transport_->Send(msgpack::Encode(msgpack::Value(std::move(request))));

  const Bytes reply = transport_->Receive();
  msgpack::Value response = msgpack::Decode(reply);
  auto& fields = response.AsMutable<msgpack::Array>();
  if (fields.size() != 4 || fields[0].AsInt() != kResponseType) {
    throw RpcError("malformed RPC response");
  }
  if (fields[1].AsUint() != msgid) {
    throw RpcError("RPC response msgid mismatch");
  }
  if (!fields[2].IsNil()) {
    throw RpcError("remote error calling '" + method +
                   "': " + fields[2].As<std::string>());
  }
  return std::move(fields[3]);
}

}  // namespace vizndp::rpc
