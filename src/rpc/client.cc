#include "rpc/client.h"

#include <algorithm>

#include "common/error.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"
#include "obs/context.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "rpc/protocol.h"
#include "rpc/trace_wire.h"

namespace vizndp::rpc {

namespace {

std::uint64_t MethodSalt(const std::string& method) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : method) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

std::string EventDetail(const std::string& method, int attempt) {
  return "method=" + method + " attempt=" + std::to_string(attempt);
}

// Folds one attempt's reply piggyback into the local tracer: the server
// spans land clock-aligned on their original tracks, and the two wire
// legs appear as pseudo-spans parented under the attempt span. Malformed
// piggybacks are ignored — trace material must never fail a call.
void MergeReplyPiggyback(const msgpack::Value& piggyback, std::uint64_t t0,
                         std::uint64_t t3, const obs::TraceContext& ctx,
                         obs::Tracer& tracer) {
  if (!piggyback.Is<msgpack::Map>()) return;
  const msgpack::Value* recv = piggyback.Find(kPiggybackRecvKey);
  const msgpack::Value* send = piggyback.Find(kPiggybackSendKey);
  if (recv == nullptr || send == nullptr || !recv->IsInteger() ||
      !send->IsInteger()) {
    return;
  }
  obs::RemoteAttemptTrace attempt;
  attempt.t0_client_send_us = t0;
  attempt.t3_client_recv_us = t3;
  attempt.t1_server_recv_us = recv->AsUint();
  attempt.t2_server_send_us = send->AsUint();
  attempt.has_server_times = true;
  if (const msgpack::Value* spans = piggyback.Find(kPiggybackSpansKey)) {
    attempt.server_events = EventsFromValue(*spans);
  }
  obs::MergeRemoteAttempt(tracer, attempt, ctx.trace_id, ctx.span_id);
}

// Maps a typed-prefix remote error string back to its exception type
// (the inverse of the server's catch ladder; see rpc/protocol.h).
[[noreturn]] void ThrowRemoteError(const std::string& method,
                                   const std::string& remote) {
  if (remote.starts_with(kBusyErrorPrefix)) {
    throw BusyError("server busy calling '" + method +
                    "': " + remote.substr(kBusyErrorPrefix.size()));
  }
  if (remote.starts_with(kCorruptErrorPrefix)) {
    throw CorruptDataError("remote data corruption calling '" + method +
                           "': " +
                           remote.substr(kCorruptErrorPrefix.size()));
  }
  if (remote.starts_with(kTransientIoErrorPrefix)) {
    throw TransientIoError(
        "remote I/O error calling '" + method +
        "': " + remote.substr(kTransientIoErrorPrefix.size()));
  }
  if (remote.starts_with(kIoErrorPrefix)) {
    throw IoError("remote I/O error calling '" + method +
                  "': " + remote.substr(kIoErrorPrefix.size()));
  }
  throw RpcError("remote error calling '" + method + "': " + remote);
}

}  // namespace

// One attempt: send the request, then receive until *our* reply arrives.
// Responses with an older msgid are stale leftovers — a duplicated frame
// or a reply that outlived its timed-out attempt — and are discarded
// rather than treated as a protocol violation.
msgpack::Value Client::CallOnce(const std::string& method,
                                const msgpack::Array& params,
                                net::Deadline deadline) {
  obs::Tracer& tracer = obs::GlobalTracer();
  // Each attempt is a distinct tagged child span of the rpc.call span, so
  // a retried request renders as N attempt boxes, failures included.
  obs::Span span("rpc.attempt:" + method, tracer);
  const std::uint64_t msgid = next_msgid_++;

  msgpack::Array request;
  request.emplace_back(kRequestType);
  request.emplace_back(msgid);
  request.emplace_back(method);
  request.push_back(msgpack::Value(msgpack::Array(params)));
  // The attempt span installed itself as the thread's current span, so
  // the ctx sent over the wire parents the server's dispatch span under
  // *this attempt*. Only sampled contexts travel: with tracing off the
  // frame keeps the pre-tracing 4-element shape old servers require.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  const bool traced = ctx.valid() && ctx.sampled;
  if (traced) request.push_back(ContextToValue(ctx));
  const std::uint64_t t0 = tracer.NowMicros();
  transport_->Send(msgpack::Encode(msgpack::Value(std::move(request))));

  for (;;) {
    const Bytes reply = transport_->Receive(deadline);
    const std::uint64_t t3 = tracer.NowMicros();
    msgpack::Value response = msgpack::Decode(reply);
    auto& fields = response.AsMutable<msgpack::Array>();
    if (fields.size() >= 2 && fields[0].AsInt() == kChunkType) {
      // A chunk left over from an abandoned stream on this connection
      // (the caller resumed after a stall): stale by construction — a
      // monolithic call never gets chunks of its own.
      metrics().GetCounter("rpc_stale_replies_total").Increment();
      obs::GlobalEventLog().Append("rpc.stale_reply", "method=" + method);
      continue;
    }
    if (fields.size() < 4 || fields[0].AsInt() != kResponseType) {
      throw RpcError("malformed RPC response");
    }
    const std::uint64_t got = fields[1].AsUint();
    if (got != msgid) {
      if (got < msgid) {
        metrics().GetCounter("rpc_stale_replies_total").Increment();
        obs::GlobalEventLog().Append("rpc.stale_reply", "method=" + method);
        continue;  // stale reply from an earlier attempt; keep waiting
      }
      throw RpcError("RPC response msgid mismatch");
    }
    // Merge the piggyback *before* error handling: a busy or corrupt
    // reply still cost a round trip, and its server span + wire legs
    // belong in the trace exactly because the attempt failed.
    if (traced && fields.size() >= 5) {
      MergeReplyPiggyback(fields[4], t0, t3, ctx, tracer);
    }
    if (!fields[2].IsNil()) {
      // Well-known prefixes carry typed errors across the string-only
      // error slot (see rpc/protocol.h).
      ThrowRemoteError(method, fields[2].As<std::string>());
    }
    return std::move(fields[3]);
  }
}

msgpack::Value Client::Call(const std::string& method, msgpack::Array params,
                            const CallOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  // One span per logical call on the "client" trace track; each attempt
  // nests inside it, and the matching server-side "rpc.dispatch:" span
  // nests inside the attempt.
  obs::Tracer& tracer = obs::GlobalTracer();
  if (tracer.enabled()) tracer.SetThreadTrack("client");
  obs::Span span("rpc.call:" + method, tracer);

  const auto timeout =
      options.timeout.count() > 0 ? options.timeout : default_timeout_;
  const int attempts =
      options.idempotent ? std::max(retry_.max_attempts, 1) : 1;
  const std::uint64_t salt = MethodSalt(method);

  for (int attempt = 1;; ++attempt) {
    try {
      return CallOnce(method, params, net::DeadlineAfter(timeout));
    } catch (const TimeoutError&) {
      metrics().GetCounter("rpc_timeouts_total", {{"method", method}})
          .Increment();
      obs::GlobalEventLog().Append("rpc.timeout", EventDetail(method, attempt));
      if (attempt >= attempts) {
        throw TimeoutError("rpc call '" + method + "' timed out after " +
                           std::to_string(attempt) + " attempt(s)");
      }
    } catch (const BusyError&) {
      // The server shed the request *before* running the handler, so a
      // retry is safe even for non-idempotent calls; back off and let the
      // overload clear.
      metrics().GetCounter("rpc_busy_total", {{"method", method}}).Increment();
      obs::GlobalEventLog().Append("rpc.busy", EventDetail(method, attempt));
      if (attempt >= std::max(retry_.max_attempts, 1)) throw;
    } catch (const RpcError&) {
      // The server is alive and reported an application error (or sent a
      // malformed reply): retrying would repeat the same failure.
      throw;
    } catch (const CorruptDataError&) {
      // The server already exhausted its own recovery ladder (re-read,
      // whole-blob fallback); retrying reads the same bad bytes. Let the
      // caller decide (NdpContourSource falls back to the baseline path).
      throw;
    } catch (const PeerClosedError&) {
      // Listed before IoError (its base): a closed peer is transport
      // loss, retryable for idempotent calls like any other Error.
      metrics()
          .GetCounter("rpc_transport_errors_total", {{"method", method}})
          .Increment();
      obs::GlobalEventLog().Append("rpc.transport_error",
                                   EventDetail(method, attempt));
      if (attempt >= attempts) throw;
    } catch (const TransientIoError&) {
      // The *remote store* flaked and the server's own retry budget ran
      // out; another attempt reruns the whole server-side ladder, so for
      // idempotent calls it is worth one more backoff cycle.
      metrics()
          .GetCounter("rpc_remote_io_total", {{"method", method}})
          .Increment();
      obs::GlobalEventLog().Append("rpc.remote_io", EventDetail(method, attempt));
      if (attempt >= attempts) throw;
    } catch (const IoError&) {
      // Permanent remote storage failure (missing object, dead device):
      // a retry rereads the same absence. Never retried.
      throw;
    } catch (const Error&) {
      // Transport-level loss (peer closed, corrupt frame): retryable for
      // idempotent calls. A ReconnectingTransport re-dials underneath.
      metrics()
          .GetCounter("rpc_transport_errors_total", {{"method", method}})
          .Increment();
      obs::GlobalEventLog().Append("rpc.transport_error",
                                   EventDetail(method, attempt));
      if (attempt >= attempts) throw;
    }
    metrics().GetCounter("rpc_retries_total", {{"method", method}})
        .Increment();
    obs::GlobalEventLog().Append("rpc.retry", EventDetail(method, attempt + 1));
    net::BackoffSleep(retry_, attempt, salt);
  }
}

msgpack::Value Client::CallStreaming(const std::string& method,
                                     msgpack::Array params,
                                     const StreamCallOptions& options,
                                     const ChunkCallback& on_chunk,
                                     bool* cancelled_out) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::Tracer& tracer = obs::GlobalTracer();
  if (tracer.enabled()) tracer.SetThreadTrack("client");
  obs::Span span("rpc.stream:" + method, tracer);
  if (cancelled_out != nullptr) *cancelled_out = false;

  const auto timeout =
      options.timeout.count() > 0 ? options.timeout : default_timeout_;
  const net::Deadline overall = net::DeadlineAfter(timeout);
  const std::uint64_t msgid = next_msgid_++;

  msgpack::Array request;
  request.emplace_back(kRequestType);
  request.emplace_back(msgid);
  request.emplace_back(method);
  request.push_back(msgpack::Value(msgpack::Array(params)));
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  const bool traced = ctx.valid() && ctx.sampled;
  if (traced) request.push_back(ContextToValue(ctx));
  const std::uint64_t t0 = tracer.NowMicros();
  transport_->Send(msgpack::Encode(msgpack::Value(std::move(request))));

  bool cancel_sent = false;
  for (;;) {
    // Per-frame deadline: the sooner of the overall stream deadline and
    // the chunk progress deadline, remembering which one is binding so
    // a wedged stream surfaces as StreamStallError (resumable from the
    // caller's cursor), not a plain timeout.
    net::Deadline frame_deadline = overall;
    bool stall_binding = false;
    if (options.chunk_timeout.count() > 0) {
      const net::Deadline stall =
          std::chrono::steady_clock::now() + options.chunk_timeout;
      if (stall < frame_deadline) {
        frame_deadline = stall;
        stall_binding = true;
      }
    }
    Bytes reply;
    try {
      reply = transport_->Receive(frame_deadline);
    } catch (const TimeoutError&) {
      if (stall_binding) {
        metrics()
            .GetCounter("rpc_stream_stalls_total", {{"method", method}})
            .Increment();
        obs::GlobalEventLog().Append("rpc.stream_stall", "method=" + method);
        throw StreamStallError(
            "stream '" + method + "' stalled: no frame within " +
            std::to_string(options.chunk_timeout.count()) + " ms");
      }
      metrics().GetCounter("rpc_timeouts_total", {{"method", method}})
          .Increment();
      obs::GlobalEventLog().Append("rpc.timeout", EventDetail(method, 1));
      throw TimeoutError("rpc stream '" + method + "' ran past its overall " +
                         "deadline");
    }
    const std::uint64_t t3 = tracer.NowMicros();
    msgpack::Value response = msgpack::Decode(reply);
    auto& fields = response.AsMutable<msgpack::Array>();
    if (fields.size() < 2) throw RpcError("malformed RPC frame");
    const std::int64_t type = fields[0].AsInt();
    const std::uint64_t got = fields[1].AsUint();
    if (got != msgid) {
      if (got < msgid) {
        metrics().GetCounter("rpc_stale_replies_total").Increment();
        obs::GlobalEventLog().Append("rpc.stale_reply", "method=" + method);
        continue;  // leftover frame from an abandoned stream
      }
      throw RpcError("RPC response msgid mismatch");
    }
    if (type == kChunkType) {
      if (fields.size() < 3) throw RpcError("malformed chunk frame");
      if (!cancel_sent && !on_chunk(fields[2])) {
        msgpack::Array cancel;
        cancel.emplace_back(kCancelType);
        cancel.emplace_back(msgid);
        transport_->Send(msgpack::Encode(msgpack::Value(std::move(cancel))));
        cancel_sent = true;
        // Keep draining: the terminal frame must be consumed so the
        // connection stays framed for the next call.
      }
      continue;
    }
    if (type != kResponseType || fields.size() < 4) {
      throw RpcError("malformed RPC response");
    }
    if (traced && fields.size() >= 5) {
      MergeReplyPiggyback(fields[4], t0, t3, ctx, tracer);
    }
    if (!fields[2].IsNil()) {
      const std::string& remote = fields[2].As<std::string>();
      if (remote.starts_with(kCancelledErrorPrefix)) {
        if (cancel_sent) {
          // The abort we asked for: an acknowledgement, not an error.
          if (cancelled_out != nullptr) *cancelled_out = true;
          return msgpack::Value();
        }
        throw RpcError("remote error calling '" + method + "': " + remote);
      }
      ThrowRemoteError(method, remote);
    }
    return std::move(fields[3]);
  }
}

}  // namespace vizndp::rpc
