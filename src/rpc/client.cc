#include "rpc/client.h"

#include <algorithm>

#include "common/error.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"
#include "obs/trace.h"
#include "rpc/protocol.h"

namespace vizndp::rpc {

namespace {

std::uint64_t MethodSalt(const std::string& method) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : method) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

}  // namespace

// One attempt: send the request, then receive until *our* reply arrives.
// Responses with an older msgid are stale leftovers — a duplicated frame
// or a reply that outlived its timed-out attempt — and are discarded
// rather than treated as a protocol violation.
msgpack::Value Client::CallOnce(const std::string& method,
                                const msgpack::Array& params,
                                net::Deadline deadline) {
  const std::uint64_t msgid = next_msgid_++;

  msgpack::Array request;
  request.emplace_back(kRequestType);
  request.emplace_back(msgid);
  request.emplace_back(method);
  request.push_back(msgpack::Value(msgpack::Array(params)));
  transport_->Send(msgpack::Encode(msgpack::Value(std::move(request))));

  for (;;) {
    const Bytes reply = transport_->Receive(deadline);
    msgpack::Value response = msgpack::Decode(reply);
    auto& fields = response.AsMutable<msgpack::Array>();
    if (fields.size() != 4 || fields[0].AsInt() != kResponseType) {
      throw RpcError("malformed RPC response");
    }
    const std::uint64_t got = fields[1].AsUint();
    if (got != msgid) {
      if (got < msgid) {
        metrics().GetCounter("rpc_stale_replies_total").Increment();
        continue;  // stale reply from an earlier attempt; keep waiting
      }
      throw RpcError("RPC response msgid mismatch");
    }
    if (!fields[2].IsNil()) {
      // Well-known prefixes carry typed errors across the string-only
      // error slot (see rpc/protocol.h).
      const std::string& remote = fields[2].As<std::string>();
      if (remote.starts_with(kBusyErrorPrefix)) {
        throw BusyError("server busy calling '" + method +
                        "': " + remote.substr(kBusyErrorPrefix.size()));
      }
      if (remote.starts_with(kCorruptErrorPrefix)) {
        throw CorruptDataError("remote data corruption calling '" + method +
                               "': " +
                               remote.substr(kCorruptErrorPrefix.size()));
      }
      throw RpcError("remote error calling '" + method + "': " + remote);
    }
    return std::move(fields[3]);
  }
}

msgpack::Value Client::Call(const std::string& method, msgpack::Array params,
                            const CallOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  // One span per round trip on the "client" trace track; the matching
  // server-side "rpc.dispatch:" span nests inside it, so the gap between
  // the two is the transfer + queueing cost.
  obs::Tracer& tracer = obs::GlobalTracer();
  if (tracer.enabled()) tracer.SetThreadTrack("client");
  obs::Span span("rpc.call:" + method, tracer);

  const auto timeout =
      options.timeout.count() > 0 ? options.timeout : default_timeout_;
  const int attempts =
      options.idempotent ? std::max(retry_.max_attempts, 1) : 1;
  const std::uint64_t salt = MethodSalt(method);

  for (int attempt = 1;; ++attempt) {
    try {
      return CallOnce(method, params, net::DeadlineAfter(timeout));
    } catch (const TimeoutError&) {
      metrics().GetCounter("rpc_timeouts_total", {{"method", method}})
          .Increment();
      if (attempt >= attempts) {
        throw TimeoutError("rpc call '" + method + "' timed out after " +
                           std::to_string(attempt) + " attempt(s)");
      }
    } catch (const BusyError&) {
      // The server shed the request *before* running the handler, so a
      // retry is safe even for non-idempotent calls; back off and let the
      // overload clear.
      metrics().GetCounter("rpc_busy_total", {{"method", method}}).Increment();
      if (attempt >= std::max(retry_.max_attempts, 1)) throw;
    } catch (const RpcError&) {
      // The server is alive and reported an application error (or sent a
      // malformed reply): retrying would repeat the same failure.
      throw;
    } catch (const CorruptDataError&) {
      // The server already exhausted its own recovery ladder (re-read,
      // whole-blob fallback); retrying reads the same bad bytes. Let the
      // caller decide (NdpContourSource falls back to the baseline path).
      throw;
    } catch (const Error&) {
      // Transport-level loss (peer closed, corrupt frame): retryable for
      // idempotent calls. A ReconnectingTransport re-dials underneath.
      if (attempt >= attempts) throw;
    }
    metrics().GetCounter("rpc_retries_total", {{"method", method}})
        .Increment();
    net::BackoffSleep(retry_, attempt, salt);
  }
}

}  // namespace vizndp::rpc
