// RPC server: named handlers dispatched over any Transport. Mirrors
// rpclib's `server.bind(name, fn)` model. Handler exceptions are caught
// and returned to the caller as RPC errors rather than killing the server.
//
// Every server owns an obs::Registry: Dispatch maintains a per-method
// request count, error count, and latency histogram (plus the unlabeled
// rpc_requests_total behind requests_served()), and emits one
// "rpc.dispatch:<method>" span per request on the "server" trace track.
//
// Overload control: SetOptions can cap concurrent in-flight requests and
// hand out a byte budget for decompressed working memory. A request that
// would exceed either cap is *shed before its handler runs* — the caller
// gets a BusyError-prefixed reply it can always retry — and Stop() turns
// the server into a draining one: in-flight requests finish (bounded by
// the drain deadline), everything new is shed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "msgpack/value.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace vizndp::rpc {

// Per-server robustness knobs: one poisoned request (oversized frame,
// undecodable garbage, or a handler that blows its deadline) is counted,
// the connection is dropped, and the dispatch thread survives to serve
// the next connection.
struct ServerOptions {
  // Largest request frame Dispatch will touch; larger frames close the
  // connection (rpc_oversize_frames_total).
  std::uint64_t max_frame_bytes = 1ull << 30;
  // Budget for one handler run; 0 disables. A handler cannot be
  // preempted, but an overrun is reported to the caller as an RPC error
  // instead of a silently slow reply (rpc_deadline_exceeded_total).
  std::chrono::milliseconds request_deadline{0};
  // Admission control: maximum concurrently executing handlers; 0 means
  // unlimited. The excess request is shed with a retryable busy reply
  // before its handler runs (rpc_busy_rejected_total).
  int max_inflight = 0;
  // Byte budget for decompressed working memory, enforced through
  // memory_budget() by handlers that reserve before allocating
  // (NdpServer reserves each request's raw array size); 0 = unlimited.
  std::uint64_t mem_budget_bytes = 0;
  // How long Stop() waits for in-flight handlers before giving up.
  std::chrono::milliseconds drain_deadline{5000};
};

// Tracks reservations of a shared byte budget (decompressed brick
// memory). Lock-free; over-budget reservations fail instead of blocking,
// so the caller can shed the request as retryable-busy rather than queue
// unbounded work.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(std::uint64_t limit_bytes) : limit_(limit_bytes) {}

  void SetLimit(std::uint64_t limit_bytes) {
    limit_.store(limit_bytes, std::memory_order_relaxed);
  }
  std::uint64_t limit() const {
    return limit_.load(std::memory_order_relaxed);
  }
  std::uint64_t in_use() const {
    return in_use_.load(std::memory_order_relaxed);
  }

  // Gauge mirroring in_use(), e.g. rpc_mem_budget_used_bytes. Optional;
  // must outlive the budget.
  void SetGauge(obs::Gauge* gauge) { gauge_ = gauge; }

  // False when the reservation would exceed the limit (limit 0 always
  // admits but still tracks usage, so the gauge stays meaningful).
  bool TryReserve(std::uint64_t bytes);
  void Release(std::uint64_t bytes);

  // RAII reservation: throws BusyError when the budget cannot admit
  // `bytes`, releases on destruction.
  class Reservation {
   public:
    Reservation() = default;
    Reservation(MemoryBudget& budget, std::uint64_t bytes);
    ~Reservation();

    Reservation(Reservation&& other) noexcept;
    Reservation& operator=(Reservation&& other) noexcept;
    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;

   private:
    MemoryBudget* budget_ = nullptr;
    std::uint64_t bytes_ = 0;
  };

 private:
  std::atomic<std::uint64_t> limit_{0};
  std::atomic<std::uint64_t> in_use_{0};
  obs::Gauge* gauge_ = nullptr;
};

// Outbound side of one streaming reply (protocol.h: chunk frames
// [2, msgid, map] followed by one ordinary terminal response). Handed to
// handlers bound with BindStreaming; the dispatcher owns the concrete
// sink and ties it to the request's transport and msgid.
class StreamSink {
 public:
  virtual ~StreamSink() = default;

  // Sends one chunk frame. Returns false when the stream is dead — the
  // client sent a cancel frame or the connection closed — after which
  // the handler must stop producing and return promptly (its return
  // value is replaced by a cancelled terminal response).
  virtual bool Emit(const msgpack::Value& chunk) = 0;

  // True once a cancel frame or peer-close has been observed. Checked by
  // handlers between expensive batches to abandon work early.
  virtual bool Cancelled() const = 0;

  std::uint64_t chunks_emitted() const { return chunks_emitted_; }

 protected:
  std::uint64_t chunks_emitted_ = 0;
};

class Server {
 public:
  using Handler = std::function<msgpack::Value(const msgpack::Array& params)>;
  // Streaming handler: `sink` is null when the request arrived through a
  // transport-less Dispatch (in-proc tests, old front ends) — the
  // handler must then answer monolithically, exactly like a Handler.
  using StreamingHandler = std::function<msgpack::Value(
      const msgpack::Array& params, StreamSink* sink)>;

  void SetOptions(const ServerOptions& options);
  const ServerOptions& options() const { return options_; }

  void Bind(const std::string& method, Handler handler);

  // Binds a method that may stream its reply. Whether it actually
  // streams is the handler's choice per request (ndp.select streams only
  // when the params carry a stream map), so one binding serves old
  // monolithic clients and new streaming ones.
  void BindStreaming(const std::string& method, StreamingHandler handler);

  // Serves one connection until the peer closes or the server stops.
  // Runs on the caller's thread; use std::thread for concurrent serving.
  void ServeTransport(net::Transport& transport);

  // Core dispatch: decodes one request frame, runs the handler, returns
  // the encoded response frame. Exposed for tests. Safe to call from
  // many threads at once (that is what the in-flight cap is for).
  Bytes Dispatch(ByteSpan request_frame);

  // Transport-aware dispatch: identical, except a streaming handler gets
  // a live StreamSink that emits chunk frames on `transport` and polls
  // it (non-blocking, between frames) for cancel frames. Returns the
  // terminal response frame, or empty Bytes for a frame that needs no
  // reply (a stray cancel for an already-closed stream). ServeTransport
  // uses this overload; chunk emission happens on the caller's thread,
  // so Send never races the serve loop's Receive.
  Bytes Dispatch(ByteSpan request_frame, net::Transport* transport);

  // Graceful drain: immediately sheds every new request with a busy
  // reply, then waits up to options().drain_deadline for in-flight
  // handlers to finish. Returns true when the server drained fully
  // (false: the deadline passed with handlers still running, counted in
  // rpc_drain_timeouts_total). After Stop, ServeTransport loops exit on
  // their next tick. Idempotent.
  bool Stop();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  int inflight() const { return inflight_.load(std::memory_order_acquire); }

  // One currently executing handler, as reported by the ndp.health RPC:
  // which method, since when (GlobalTracer µs), and — when the request
  // carried a trace context — which trace to pull for the full story.
  struct InflightRequest {
    std::string method;
    std::uint64_t trace_id = 0;  // 0 = untraced request
    std::uint64_t start_us = 0;  // admission time, GlobalTracer clock
  };

  // Snapshot of the handlers executing right now (admitted, not shed).
  std::vector<InflightRequest> InflightSnapshot() const;

  // Shared decompressed-memory budget (limit follows
  // options().mem_budget_bytes). Handlers reserve through this before
  // large allocations; see NdpServer::SetMemoryBudget.
  MemoryBudget& memory_budget() { return mem_budget_; }

  // Total dispatches, successful or not (kept from the pre-obs API; now
  // backed by the rpc_requests_total counter in metrics()).
  std::uint64_t requests_served() const { return requests_total_->value(); }

  // Per-server metrics: rpc_requests_total, rpc_errors_total and
  // rpc_dispatch_seconds{method=...}, rpc_unknown_method_total, plus the
  // overload set: rpc_busy_rejected_total, rpc_inflight_requests (gauge),
  // rpc_mem_budget_used_bytes (gauge), rpc_drain_timeouts_total.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

 private:
  // Handler plus its metric handles, resolved once at Bind so Dispatch
  // stays lock-free on the metrics path. Exactly one of handler /
  // streaming is set.
  struct Bound {
    Handler handler;
    StreamingHandler streaming;
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::WindowedHistogram* latency = nullptr;
  };

  Bound& BindCommon(const std::string& method);

  std::map<std::string, Bound> handlers_;
  ServerOptions options_;
  obs::Registry metrics_;
  obs::Counter* requests_total_ = &metrics_.GetCounter("rpc_requests_total");
  obs::Counter* busy_rejected_ =
      &metrics_.GetCounter("rpc_busy_rejected_total");
  obs::Gauge* inflight_gauge_ =
      &metrics_.GetGauge("rpc_inflight_requests");

  std::atomic<int> inflight_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  MemoryBudget mem_budget_;

  // Registry behind InflightSnapshot(); keyed by a private token so two
  // concurrent requests with equal msgids (different connections) don't
  // collide.
  mutable std::mutex inflight_table_mu_;
  std::map<std::uint64_t, InflightRequest> inflight_table_;
  std::uint64_t next_inflight_token_ = 1;
};

// TCP front end: accepts connections on a loopback port and serves each on
// its own thread. Stop() (or destruction) drains the rpc::Server, then
// closes the listener and joins every connection thread.
class TcpRpcServer {
 public:
  // port 0 picks an ephemeral port.
  explicit TcpRpcServer(Server& server, std::uint16_t port = 0);
  ~TcpRpcServer();

  TcpRpcServer(const TcpRpcServer&) = delete;
  TcpRpcServer& operator=(const TcpRpcServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  // Graceful shutdown: drain the server (finish in-flight, shed new,
  // bounded by its drain deadline), stop accepting, join all connection
  // threads. Idempotent; the destructor calls it.
  void Stop();

 private:
  void AcceptLoop();

  Server& server_;
  net::TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex workers_mu_;
};

}  // namespace vizndp::rpc
