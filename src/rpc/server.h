// RPC server: named handlers dispatched over any Transport. Mirrors
// rpclib's `server.bind(name, fn)` model. Handler exceptions are caught
// and returned to the caller as RPC errors rather than killing the server.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "msgpack/value.h"
#include "net/tcp.h"
#include "net/transport.h"

namespace vizndp::rpc {

class Server {
 public:
  using Handler = std::function<msgpack::Value(const msgpack::Array& params)>;

  void Bind(const std::string& method, Handler handler);

  // Serves one connection until the peer closes. Runs on the caller's
  // thread; use std::thread/ServeAsync for concurrent serving.
  void ServeTransport(net::Transport& transport);

  // Core dispatch: decodes one request frame, runs the handler, returns
  // the encoded response frame. Exposed for tests.
  Bytes Dispatch(ByteSpan request_frame);

  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  std::map<std::string, Handler> handlers_;
  std::atomic<std::uint64_t> requests_served_{0};
};

// TCP front end: accepts connections on a loopback port and serves each on
// its own thread. Stops (and joins) on destruction.
class TcpRpcServer {
 public:
  // port 0 picks an ephemeral port.
  explicit TcpRpcServer(Server& server, std::uint16_t port = 0);
  ~TcpRpcServer();

  TcpRpcServer(const TcpRpcServer&) = delete;
  TcpRpcServer& operator=(const TcpRpcServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

 private:
  void AcceptLoop();

  Server& server_;
  net::TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex workers_mu_;
};

}  // namespace vizndp::rpc
