// RPC server: named handlers dispatched over any Transport. Mirrors
// rpclib's `server.bind(name, fn)` model. Handler exceptions are caught
// and returned to the caller as RPC errors rather than killing the server.
//
// Every server owns an obs::Registry: Dispatch maintains a per-method
// request count, error count, and latency histogram (plus the unlabeled
// rpc_requests_total behind requests_served()), and emits one
// "rpc.dispatch:<method>" span per request on the "server" trace track.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "msgpack/value.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace vizndp::rpc {

// Per-server robustness knobs: one poisoned request (oversized frame,
// undecodable garbage, or a handler that blows its deadline) is counted,
// the connection is dropped, and the dispatch thread survives to serve
// the next connection.
struct ServerOptions {
  // Largest request frame Dispatch will touch; larger frames close the
  // connection (rpc_oversize_frames_total).
  std::uint64_t max_frame_bytes = 1ull << 30;
  // Budget for one handler run; 0 disables. A handler cannot be
  // preempted, but an overrun is reported to the caller as an RPC error
  // instead of a silently slow reply (rpc_deadline_exceeded_total).
  std::chrono::milliseconds request_deadline{0};
};

class Server {
 public:
  using Handler = std::function<msgpack::Value(const msgpack::Array& params)>;

  void SetOptions(const ServerOptions& options) { options_ = options; }
  const ServerOptions& options() const { return options_; }

  void Bind(const std::string& method, Handler handler);

  // Serves one connection until the peer closes. Runs on the caller's
  // thread; use std::thread/ServeAsync for concurrent serving.
  void ServeTransport(net::Transport& transport);

  // Core dispatch: decodes one request frame, runs the handler, returns
  // the encoded response frame. Exposed for tests.
  Bytes Dispatch(ByteSpan request_frame);

  // Total dispatches, successful or not (kept from the pre-obs API; now
  // backed by the rpc_requests_total counter in metrics()).
  std::uint64_t requests_served() const { return requests_total_->value(); }

  // Per-server metrics: rpc_requests_total, rpc_errors_total and
  // rpc_dispatch_seconds{method=...}, rpc_unknown_method_total.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

 private:
  // Handler plus its metric handles, resolved once at Bind so Dispatch
  // stays lock-free on the metrics path.
  struct Bound {
    Handler handler;
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency = nullptr;
  };

  std::map<std::string, Bound> handlers_;
  ServerOptions options_;
  obs::Registry metrics_;
  obs::Counter* requests_total_ = &metrics_.GetCounter("rpc_requests_total");
};

// TCP front end: accepts connections on a loopback port and serves each on
// its own thread. Stops (and joins) on destruction.
class TcpRpcServer {
 public:
  // port 0 picks an ephemeral port.
  explicit TcpRpcServer(Server& server, std::uint16_t port = 0);
  ~TcpRpcServer();

  TcpRpcServer(const TcpRpcServer&) = delete;
  TcpRpcServer& operator=(const TcpRpcServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

 private:
  void AcceptLoop();

  Server& server_;
  net::TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex workers_mu_;
};

}  // namespace vizndp::rpc
