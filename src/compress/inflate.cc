// DEFLATE decompressor (RFC 1951): stored, fixed-Huffman, and
// dynamic-Huffman blocks, with table-driven canonical decoding.
#include <algorithm>
#include <array>
#include <cstring>

#include "common/error.h"
#include "compress/bitio.h"
#include "compress/codec.h"
#include "compress/deflate.h"
#include "compress/deflate_tables.h"
#include "compress/huffman.h"

namespace vizndp::compress {

namespace {

using namespace detail;

const HuffmanDecoder& FixedLitLenDecoder() {
  static const HuffmanDecoder decoder = [] {
    std::vector<std::uint8_t> lengths(kNumLitLenSymbols);
    for (int i = 0; i <= 143; ++i) lengths[static_cast<size_t>(i)] = 8;
    for (int i = 144; i <= 255; ++i) lengths[static_cast<size_t>(i)] = 9;
    for (int i = 256; i <= 279; ++i) lengths[static_cast<size_t>(i)] = 7;
    for (int i = 280; i <= 287; ++i) lengths[static_cast<size_t>(i)] = 8;
    HuffmanDecoder d;
    d.Init(lengths);
    return d;
  }();
  return decoder;
}

const HuffmanDecoder& FixedDistDecoder() {
  static const HuffmanDecoder decoder = [] {
    std::vector<std::uint8_t> lengths(32, 5);
    HuffmanDecoder d;
    d.Init(lengths);
    return d;
  }();
  return decoder;
}

void ReadDynamicTables(BitReader& r, HuffmanDecoder& litlen,
                       HuffmanDecoder& dist) {
  const int hlit = static_cast<int>(r.ReadBits(5)) + 257;
  const int hdist = static_cast<int>(r.ReadBits(5)) + 1;
  const int hclen = static_cast<int>(r.ReadBits(4)) + 4;
  if (hlit > kNumLitLenSymbols || hdist > kNumDistSymbols + 2) {
    throw DecodeError("dynamic block header out of range");
  }
  std::vector<std::uint8_t> cl_lengths(19, 0);
  for (int i = 0; i < hclen; ++i) {
    cl_lengths[kCodeLengthOrder[static_cast<size_t>(i)]] =
        static_cast<std::uint8_t>(r.ReadBits(3));
  }
  HuffmanDecoder cl;
  cl.Init(cl_lengths);

  std::vector<std::uint8_t> lengths;
  lengths.reserve(static_cast<size_t>(hlit + hdist));
  while (lengths.size() < static_cast<size_t>(hlit + hdist)) {
    const int sym = cl.Decode(r);
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      if (lengths.empty()) throw DecodeError("repeat with no previous length");
      const int count = 3 + static_cast<int>(r.ReadBits(2));
      lengths.insert(lengths.end(), static_cast<size_t>(count),
                     lengths.back());
    } else if (sym == 17) {
      const int count = 3 + static_cast<int>(r.ReadBits(3));
      lengths.insert(lengths.end(), static_cast<size_t>(count), 0);
    } else {  // 18
      const int count = 11 + static_cast<int>(r.ReadBits(7));
      lengths.insert(lengths.end(), static_cast<size_t>(count), 0);
    }
  }
  if (lengths.size() != static_cast<size_t>(hlit + hdist)) {
    throw DecodeError("code length repeat overruns table");
  }
  if (lengths[kEndOfBlock] == 0) {
    throw DecodeError("dynamic block lacks an end-of-block code");
  }
  litlen.Init(std::span<const std::uint8_t>(lengths).first(
      static_cast<size_t>(hlit)));
  dist.Init(std::span<const std::uint8_t>(lengths).subspan(
      static_cast<size_t>(hlit)));
}

void InflateBlockBody(BitReader& r, const HuffmanDecoder& litlen,
                      const HuffmanDecoder& dist, Bytes& out,
                      size_t max_output) {
  for (;;) {
    const int sym = litlen.Decode(r);
    if (sym < 256) {
      if (out.size() >= max_output) {
        throw DecodeError("inflate output exceeds budget");
      }
      out.push_back(static_cast<Byte>(sym));
      continue;
    }
    if (sym == kEndOfBlock) return;
    const int lcode = sym - 257;
    if (lcode >= static_cast<int>(kLengthBase.size())) {
      throw DecodeError("invalid length symbol");
    }
    const int length =
        kLengthBase[static_cast<size_t>(lcode)] +
        static_cast<int>(r.ReadBits(kLengthExtra[static_cast<size_t>(lcode)]));
    const int dcode = dist.Decode(r);
    if (dcode >= static_cast<int>(kDistBase.size())) {
      throw DecodeError("invalid distance symbol");
    }
    const int distance =
        kDistBase[static_cast<size_t>(dcode)] +
        static_cast<int>(r.ReadBits(kDistExtra[static_cast<size_t>(dcode)]));
    if (distance > static_cast<int>(out.size())) {
      throw DecodeError("match distance reaches before stream start");
    }
    // Bulk-copy fast path for non-overlapping matches; overlapping ones
    // (the RLE idiom) still need the byte loop.
    const size_t from = out.size() - static_cast<size_t>(distance);
    const size_t old = out.size();
    if (static_cast<size_t>(length) > max_output - old) {
      throw DecodeError("inflate output exceeds budget");
    }
    out.resize(old + static_cast<size_t>(length));
    Byte* dst = out.data() + old;
    const Byte* src = out.data() + from;
    if (distance >= length) {
      std::memcpy(dst, src, static_cast<size_t>(length));
    } else {
      for (int i = 0; i < length; ++i) {
        dst[i] = src[i];
      }
    }
  }
}

}  // namespace

Bytes InflateRaw(ByteSpan input, size_t size_hint, size_t* consumed,
                 size_t max_output) {
  const size_t budget = ResolveOutputBudget(max_output);
  Bytes out;
  if (size_hint > 0) out.reserve(std::min(size_hint, budget));
  BitReader r(input);
  bool final_block = false;
  while (!final_block) {
    final_block = r.ReadBit() != 0;
    const std::uint32_t btype = r.ReadBits(2);
    switch (btype) {
      case 0: {  // stored
        r.AlignToByte();
        Byte header[4];
        r.ReadAlignedBytes(MutableByteSpan(header, 4));
        const std::uint16_t len = LoadLE<std::uint16_t>(header);
        const std::uint16_t nlen = LoadLE<std::uint16_t>(header + 2);
        if (static_cast<std::uint16_t>(~len) != nlen) {
          throw DecodeError("stored block LEN/NLEN mismatch");
        }
        const size_t old = out.size();
        if (len > budget - old) {
          throw DecodeError("inflate output exceeds budget");
        }
        out.resize(old + len);
        r.ReadAlignedBytes(MutableByteSpan(out.data() + old, len));
        break;
      }
      case 1:
        InflateBlockBody(r, FixedLitLenDecoder(), FixedDistDecoder(), out,
                         budget);
        break;
      case 2: {
        HuffmanDecoder litlen;
        HuffmanDecoder dist;
        ReadDynamicTables(r, litlen, dist);
        InflateBlockBody(r, litlen, dist, out, budget);
        break;
      }
      default:
        throw DecodeError("reserved DEFLATE block type 3");
    }
  }
  if (consumed != nullptr) {
    *consumed = r.BytesConsumed();
  }
  return out;
}

}  // namespace vizndp::compress
