// Byte-level run-length codec. Not part of the paper's evaluation, but a
// useful third point on the ratio/speed spectrum for ablations (scientific
// volume-fraction fields are full of constant runs).
//
// Format: repeated (control, payload) pairs.
//   control < 128: literal run of control+1 bytes follows.
//   control >= 128: the next byte repeats control-125 times (3..130).
#pragma once

#include "compress/codec.h"

namespace vizndp::compress {

class RleCodec final : public Codec {
 public:
  std::string name() const override { return "rle"; }
  Bytes Compress(ByteSpan input) const override;
  Bytes Decompress(ByteSpan input, size_t size_hint = 0,
                   size_t max_output = 0) const override;
};

}  // namespace vizndp::compress
