// CRC-32 (IEEE, as used by gzip) and Adler-32 (as used by zlib streams).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace vizndp::compress {

// Incremental CRC-32: pass the previous return value as `crc` to continue.
std::uint32_t Crc32(ByteSpan data, std::uint32_t crc = 0);

// Incremental Adler-32; initial value is 1.
std::uint32_t Adler32(ByteSpan data, std::uint32_t adler = 1);

// Streaming CRC-32 (init/update/final) for multi-GB blobs that never sit
// in one buffer: a VND writer checksums each compressed brick as it is
// appended, a verifier can walk a blob in chunks. `value()` may be read
// at any point — it is the CRC of everything updated so far — and
// `Reset()` starts a fresh stream.
class Crc32Stream {
 public:
  void Update(ByteSpan data) { crc_ = Crc32(data, crc_); }
  std::uint32_t value() const { return crc_; }
  void Reset() { crc_ = 0; }

 private:
  std::uint32_t crc_ = 0;
};

}  // namespace vizndp::compress
