// CRC-32 (IEEE, as used by gzip) and Adler-32 (as used by zlib streams).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace vizndp::compress {

// Incremental CRC-32: pass the previous return value as `crc` to continue.
std::uint32_t Crc32(ByteSpan data, std::uint32_t crc = 0);

// Incremental Adler-32; initial value is 1.
std::uint32_t Adler32(ByteSpan data, std::uint32_t adler = 1);

}  // namespace vizndp::compress
