#include "compress/codec.h"

#include "common/error.h"
#include "compress/gzip.h"
#include "compress/lz4.h"
#include "compress/rle.h"
#include "compress/zlib_stream.h"

namespace vizndp::compress {

CodecPtr MakeCodec(const std::string& name) {
  if (name == "none") return std::make_shared<NullCodec>();
  if (name == "gzip") return std::make_shared<GzipCodec>();
  if (name == "lz4") return std::make_shared<Lz4Codec>();
  if (name == "rle") return std::make_shared<RleCodec>();
  if (name == "zlib") return std::make_shared<ZlibCodec>();
  throw Error("unknown codec: '" + name + "'");
}

std::vector<std::string> RegisteredCodecNames() {
  return {"none", "gzip", "lz4", "rle", "zlib"};
}

}  // namespace vizndp::compress
