#include "compress/codec.h"

#include <utility>

#include "common/error.h"
#include "compress/gzip.h"
#include "compress/lz4.h"
#include "compress/rle.h"
#include "compress/zlib_stream.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vizndp::compress {

namespace {

// Decorator recording per-codec traffic and latency into the
// process-default registry (codecs are shared substrate — callers range
// from the VND reader to the object store, so there is no per-instance
// owner). Spans nest inside whatever phase span is active, which is how
// "codec.decompress:lz4" shows up inside "ndp.read" in a trace.
class InstrumentedCodec final : public Codec {
 public:
  explicit InstrumentedCodec(CodecPtr inner)
      : inner_(std::move(inner)),
        labels_{{"codec", inner_->name()}},
        compress_bytes_(obs::DefaultRegistry().GetCounter(
            "codec_compress_bytes_total", labels_)),
        decompress_bytes_(obs::DefaultRegistry().GetCounter(
            "codec_decompress_bytes_total", labels_)),
        compress_seconds_(obs::DefaultRegistry().GetHistogram(
            "codec_compress_seconds", obs::LatencyBounds(), labels_)),
        decompress_seconds_(obs::DefaultRegistry().GetHistogram(
            "codec_decompress_seconds", obs::LatencyBounds(), labels_)) {}

  std::string name() const override { return inner_->name(); }

  Bytes Compress(ByteSpan input) const override {
    obs::Span span("codec.compress:" + inner_->name());
    Bytes out = inner_->Compress(input);
    span.End();
    compress_bytes_.Increment(input.size());
    compress_seconds_.Observe(span.ElapsedSeconds());
    return out;
  }

  Bytes Decompress(ByteSpan input, size_t size_hint,
                   size_t max_output) const override {
    obs::Span span("codec.decompress:" + inner_->name());
    Bytes out = inner_->Decompress(input, size_hint, max_output);
    span.End();
    decompress_bytes_.Increment(out.size());
    decompress_seconds_.Observe(span.ElapsedSeconds());
    return out;
  }

 private:
  CodecPtr inner_;
  obs::Labels labels_;
  obs::Counter& compress_bytes_;
  obs::Counter& decompress_bytes_;
  obs::Histogram& compress_seconds_;
  obs::Histogram& decompress_seconds_;
};

CodecPtr MakeRawCodec(const std::string& name) {
  if (name == "none") return std::make_shared<NullCodec>();
  if (name == "gzip") return std::make_shared<GzipCodec>();
  if (name == "lz4") return std::make_shared<Lz4Codec>();
  if (name == "rle") return std::make_shared<RleCodec>();
  if (name == "zlib") return std::make_shared<ZlibCodec>();
  throw Error("unknown codec: '" + name + "'");
}

}  // namespace

CodecPtr MakeCodec(const std::string& name) {
  return std::make_shared<InstrumentedCodec>(MakeRawCodec(name));
}

std::vector<std::string> RegisteredCodecNames() {
  return {"none", "gzip", "lz4", "rle", "zlib"};
}

}  // namespace vizndp::compress
