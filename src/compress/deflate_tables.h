// Shared RFC 1951 constant tables: length/distance code bases and extra
// bits, and the code-length-alphabet permutation. Used by both the
// compressor (deflate.cc) and the decompressor (inflate.cc).
#pragma once

#include <array>
#include <cstdint>

namespace vizndp::compress::detail {

inline constexpr int kNumLitLenSymbols = 288;  // 0..255 lit, 256 EOB, 257..285 len
inline constexpr int kNumDistSymbols = 30;
inline constexpr int kEndOfBlock = 256;
inline constexpr int kMinMatch = 3;
inline constexpr int kMaxMatch = 258;
inline constexpr int kWindowSize = 32768;

// Length codes 257..285: base match length and number of extra bits.
inline constexpr std::array<std::uint16_t, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
inline constexpr std::array<std::uint8_t, 29> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// Distance codes 0..29: base distance and number of extra bits.
inline constexpr std::array<std::uint16_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
inline constexpr std::array<std::uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Order in which code lengths for the code-length alphabet are stored
// in a dynamic block header (RFC 1951 §3.2.7).
inline constexpr std::array<std::uint8_t, 19> kCodeLengthOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

// Maps a match length (3..258) to its length code index (0..28).
int LengthToCode(int length);

// Maps a distance (1..32768) to its distance code index (0..29).
int DistanceToCode(int distance);

}  // namespace vizndp::compress::detail
