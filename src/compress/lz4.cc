#include "compress/lz4.h"

#include <cstring>

#include "common/error.h"

namespace vizndp::compress {

namespace {

constexpr int kMinMatch = 4;
constexpr int kMaxOffset = 65535;
// The format forbids matches too close to the end: the last 5 bytes are
// always literals, and a match may not start within the last 12 bytes.
constexpr size_t kLastLiterals = 5;
constexpr size_t kMatchSafeMargin = 12;

constexpr int kHashLog = 16;

std::uint32_t Load32(const Byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint32_t Hash4(const Byte* p) {
  return (Load32(p) * 2654435761u) >> (32 - kHashLog);
}

void WriteLength(size_t value, Bytes& out) {
  // Extension bytes after a nibble of 15: each 255 adds 255, the final
  // byte (< 255) terminates.
  while (value >= 255) {
    out.push_back(255);
    value -= 255;
  }
  out.push_back(static_cast<Byte>(value));
}

void EmitSequence(ByteSpan literals, size_t match_len, size_t offset,
                  Bytes& out) {
  const size_t lit_len = literals.size();
  const size_t ml = match_len > 0 ? match_len - kMinMatch : 0;
  Byte token = 0;
  token |= static_cast<Byte>(std::min<size_t>(lit_len, 15) << 4);
  if (match_len > 0) {
    token |= static_cast<Byte>(std::min<size_t>(ml, 15));
  }
  out.push_back(token);
  if (lit_len >= 15) WriteLength(lit_len - 15, out);
  out.insert(out.end(), literals.begin(), literals.end());
  if (match_len > 0) {
    out.push_back(static_cast<Byte>(offset & 0xFF));
    out.push_back(static_cast<Byte>(offset >> 8));
    if (ml >= 15) WriteLength(ml - 15, out);
  }
}

}  // namespace

Bytes Lz4CompressBlock(ByteSpan input, int acceleration) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  const size_t n = input.size();
  if (n == 0) {
    out.push_back(0);  // single empty-literal sequence
    return out;
  }
  if (n < kMatchSafeMargin + 1) {
    EmitSequence(input, 0, 0, out);
    return out;
  }

  std::vector<std::int64_t> table(1u << kHashLog, -1);
  const size_t match_limit = n - kMatchSafeMargin;  // last legal match start
  const Byte* const base = input.data();
  size_t anchor = 0;
  size_t pos = 0;
  const int accel = std::max(1, acceleration);

  while (pos < match_limit) {
    // Search with step acceleration (LZ4's "skip faster over
    // incompressible data" heuristic).
    size_t match_pos = 0;
    size_t search = pos;
    int step_counter = accel << 6;
    bool found = false;
    while (search < match_limit) {
      const std::uint32_t h = Hash4(base + search);
      const std::int64_t cand = table[h];
      table[h] = static_cast<std::int64_t>(search);
      if (cand >= 0 &&
          static_cast<std::int64_t>(search) - cand <= kMaxOffset &&
          Load32(base + cand) == Load32(base + search)) {
        match_pos = static_cast<size_t>(cand);
        pos = search;
        found = true;
        break;
      }
      search += static_cast<size_t>(step_counter++ >> 6);
    }
    if (!found) break;

    // Extend the match backwards over pending literals.
    while (pos > anchor && match_pos > 0 &&
           base[pos - 1] == base[match_pos - 1]) {
      --pos;
      --match_pos;
    }
    // Extend forwards. Matches must leave kLastLiterals at the end.
    size_t match_len = kMinMatch;
    const size_t extend_limit = n - kLastLiterals;
    while (pos + match_len < extend_limit &&
           base[pos + match_len] == base[match_pos + match_len]) {
      ++match_len;
    }

    EmitSequence(input.subspan(anchor, pos - anchor), match_len,
                 pos - match_pos, out);
    pos += match_len;
    anchor = pos;
    // Index interior positions sparsely to keep future matches findable.
    if (pos >= 2 && pos - 2 < match_limit) {
      table[Hash4(base + pos - 2)] = static_cast<std::int64_t>(pos - 2);
    }
  }

  // Trailing literals.
  EmitSequence(input.subspan(anchor), 0, 0, out);
  return out;
}

Bytes Lz4DecompressBlock(ByteSpan block, size_t decompressed_size) {
  Bytes out;
  out.reserve(decompressed_size);
  size_t pos = 0;
  const size_t n = block.size();
  auto read_byte = [&]() -> Byte {
    if (pos >= n) throw DecodeError("lz4 block truncated");
    return block[pos++];
  };
  auto read_length = [&](size_t base_len) -> size_t {
    size_t len = base_len;
    if (base_len == 15) {
      Byte b;
      do {
        b = read_byte();
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (pos < n) {
    const Byte token = read_byte();
    const size_t lit_len = read_length(token >> 4);
    if (pos + lit_len > n) throw DecodeError("lz4 literal run overruns block");
    if (lit_len > decompressed_size - out.size()) {
      throw DecodeError("lz4 output exceeds declared size");
    }
    out.insert(out.end(), block.begin() + static_cast<std::ptrdiff_t>(pos),
               block.begin() + static_cast<std::ptrdiff_t>(pos + lit_len));
    pos += lit_len;
    if (pos >= n) break;  // final sequence carries no match
    const size_t offset = static_cast<size_t>(read_byte()) |
                          (static_cast<size_t>(read_byte()) << 8);
    if (offset == 0 || offset > out.size()) {
      throw DecodeError("lz4 match offset out of range");
    }
    const size_t match_len = read_length(token & 0x0F) + kMinMatch;
    if (match_len > decompressed_size - out.size()) {
      throw DecodeError("lz4 output exceeds declared size");
    }
    size_t from = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out.push_back(out[from++]);
    }
  }
  if (out.size() != decompressed_size) {
    throw DecodeError("lz4 decompressed size mismatch: got " +
                      std::to_string(out.size()) + ", want " +
                      std::to_string(decompressed_size));
  }
  return out;
}

Bytes Lz4Codec::Compress(ByteSpan input) const {
  Bytes out;
  AppendLE<std::uint64_t>(input.size(), out);
  Bytes block = Lz4CompressBlock(input, acceleration_);
  out.insert(out.end(), block.begin(), block.end());
  return out;
}

Bytes Lz4Codec::Decompress(ByteSpan input, size_t,
                           size_t max_output) const {
  if (input.size() < 8) throw DecodeError("lz4 frame too short");
  // The size prefix is untrusted: check it against the budget *before*
  // Lz4DecompressBlock reserves that many bytes (a length-lie here was a
  // one-frame OOM).
  const std::uint64_t size = LoadLE<std::uint64_t>(input.data());
  if (size > ResolveOutputBudget(max_output)) {
    throw DecodeError("lz4 declared size exceeds output budget");
  }
  return Lz4DecompressBlock(input.subspan(8), static_cast<size_t>(size));
}

}  // namespace vizndp::compress
