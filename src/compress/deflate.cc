// DEFLATE compressor: LZ77 with hash-chain match finding (zlib-style
// greedy/lazy), followed by per-block entropy coding that picks the
// cheapest of stored / fixed-Huffman / dynamic-Huffman encodings.
#include "compress/deflate.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "compress/bitio.h"
#include "compress/deflate_tables.h"
#include "compress/huffman.h"

namespace vizndp::compress {

namespace detail {

int LengthToCode(int length) {
  VIZNDP_CHECK(length >= kMinMatch && length <= kMaxMatch);
  // Linear scan is fine: called through a 256-entry LUT built below.
  for (int i = static_cast<int>(kLengthBase.size()) - 1; i >= 0; --i) {
    if (length >= kLengthBase[static_cast<size_t>(i)]) return i;
  }
  throw Error("unreachable");
}

int DistanceToCode(int distance) {
  VIZNDP_CHECK(distance >= 1 && distance <= kWindowSize);
  for (int i = static_cast<int>(kDistBase.size()) - 1; i >= 0; --i) {
    if (distance >= kDistBase[static_cast<size_t>(i)]) return i;
  }
  throw Error("unreachable");
}

}  // namespace detail

namespace {

using namespace detail;

// LUTs so the hot emit loop avoids scans.
struct CodeLuts {
  std::array<std::uint8_t, kMaxMatch + 1> length_code{};
  std::array<std::uint8_t, 512> dist_code_small{};  // distances 1..512
  // Distances 513..32768 in buckets of 256: every distance-code boundary
  // above 512 falls on a multiple of 256 plus one, so buckets never
  // straddle two codes.
  std::array<std::uint8_t, 128> dist_code_large{};

  CodeLuts() {
    for (int len = kMinMatch; len <= kMaxMatch; ++len) {
      length_code[static_cast<size_t>(len)] =
          static_cast<std::uint8_t>(LengthToCode(len));
    }
    for (int d = 1; d <= 512; ++d) {
      dist_code_small[static_cast<size_t>(d - 1)] =
          static_cast<std::uint8_t>(DistanceToCode(d));
    }
    for (int i = 2; i < 128; ++i) {
      const int d = (i << 8) + 1;
      dist_code_large[static_cast<size_t>(i)] =
          static_cast<std::uint8_t>(DistanceToCode(std::min(d, kWindowSize)));
    }
  }

  int DistCode(int distance) const {
    return distance <= 512
               ? dist_code_small[static_cast<size_t>(distance - 1)]
               : dist_code_large[static_cast<size_t>((distance - 1) >> 8)];
  }
};

const CodeLuts& Luts() {
  static const CodeLuts luts;
  return luts;
}

// A literal (len == 0, byte in `dist`) or a match (len >= kMinMatch).
struct Token {
  std::uint16_t len;
  std::uint16_t dist;
};

struct LevelParams {
  int max_chain;   // how many hash-chain candidates to try
  int good_match;  // stop chaining early once a match this long is found
  bool lazy;       // one-step lazy evaluation
};

LevelParams ParamsForLevel(int level) {
  level = std::clamp(level, 1, 9);
  static constexpr std::array<LevelParams, 9> kParams = {{
      {4, 8, false},
      {8, 16, false},
      {16, 32, false},
      {32, 32, true},
      {64, 64, true},
      {128, 128, true},
      {256, 128, true},
      {1024, 258, true},
      {4096, 258, true},
  }};
  return kParams[static_cast<size_t>(level - 1)];
}

constexpr int kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;

std::uint32_t Hash3(const Byte* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Hash-chain LZ77 matcher over the whole input (the window constraint is
// enforced when walking chains).
class MatchFinder {
 public:
  explicit MatchFinder(ByteSpan input, LevelParams params)
      : input_(input), params_(params), head_(kHashSize, -1),
        prev_(kWindowSize, -1) {}

  void Insert(std::int64_t pos) {
    if (pos + kMinMatch > static_cast<std::int64_t>(input_.size())) return;
    const std::uint32_t h = Hash3(input_.data() + pos);
    // prev_ is a ring over the window: the slot for `pos` is only
    // overwritten when pos + kWindowSize is inserted, by which time no
    // chain walk can legally reach `pos` anymore.
    prev_[static_cast<size_t>(pos) & (kWindowSize - 1)] = head_[h];
    head_[h] = pos;
  }

  // Longest match at `pos` (>= kMinMatch), or len 0.
  Token FindMatch(std::int64_t pos) const {
    const std::int64_t limit =
        std::min<std::int64_t>(static_cast<std::int64_t>(input_.size()) - pos,
                               kMaxMatch);
    if (pos + kMinMatch > static_cast<std::int64_t>(input_.size())) {
      return {0, 0};
    }
    const std::int64_t min_pos = pos - kWindowSize;
    std::int64_t cand = head_[Hash3(input_.data() + pos)];
    int best_len = kMinMatch - 1;
    std::int64_t best_pos = -1;
    int chain = params_.max_chain;
    const Byte* const cur = input_.data() + pos;
    while (cand >= 0 && cand > min_pos && chain-- > 0) {
      if (cand != pos) {
        const Byte* const cp = input_.data() + cand;
        // Quick reject on the byte that would extend the best match.
        if (cp[best_len] == cur[best_len]) {
          int len = 0;
          while (len < limit && cp[len] == cur[len]) ++len;
          if (len > best_len) {
            best_len = len;
            best_pos = cand;
            if (len >= params_.good_match || len == limit) break;
          }
        }
      }
      cand = prev_[static_cast<size_t>(cand) & (kWindowSize - 1)];
    }
    if (best_len >= kMinMatch) {
      return {static_cast<std::uint16_t>(best_len),
              static_cast<std::uint16_t>(pos - best_pos)};
    }
    return {0, 0};
  }

 private:
  ByteSpan input_;
  LevelParams params_;
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> prev_;
};

// Tokenizes `input` with greedy or one-step-lazy parsing.
std::vector<Token> Tokenize(ByteSpan input, const LevelParams& params) {
  std::vector<Token> tokens;
  tokens.reserve(input.size() / 3 + 16);
  MatchFinder finder(input, params);
  const std::int64_t n = static_cast<std::int64_t>(input.size());
  std::int64_t pos = 0;
  Token pending = {0, 0};  // match deferred by lazy evaluation
  bool have_pending = false;
  while (pos < n) {
    Token match = finder.FindMatch(pos);
    if (have_pending) {
      if (match.len > pending.len) {
        // The later match is longer: emit the previous byte as a literal
        // and keep evaluating from the current position.
        tokens.push_back({0, input[static_cast<size_t>(pos - 1)]});
        pending = match;
        finder.Insert(pos);
        ++pos;
        continue;
      }
      // Commit the pending match (it started at pos - 1).
      tokens.push_back(pending);
      const std::int64_t end = pos - 1 + pending.len;
      while (pos < end && pos < n) {
        finder.Insert(pos);
        ++pos;
      }
      have_pending = false;
      continue;
    }
    if (match.len >= kMinMatch) {
      if (params.lazy && match.len < params.good_match && pos + 1 < n) {
        pending = match;
        have_pending = true;
        finder.Insert(pos);
        ++pos;
        continue;
      }
      tokens.push_back(match);
      const std::int64_t end = pos + match.len;
      while (pos < end) {
        finder.Insert(pos);
        ++pos;
      }
    } else {
      tokens.push_back({0, input[static_cast<size_t>(pos)]});
      finder.Insert(pos);
      ++pos;
    }
  }
  if (have_pending) {
    tokens.push_back(pending);
  }
  return tokens;
}

struct FixedTables {
  std::vector<std::uint8_t> litlen_lengths;
  std::vector<std::uint8_t> dist_lengths;

  FixedTables() : litlen_lengths(kNumLitLenSymbols), dist_lengths(32, 5) {
    for (int i = 0; i <= 143; ++i) litlen_lengths[static_cast<size_t>(i)] = 8;
    for (int i = 144; i <= 255; ++i) litlen_lengths[static_cast<size_t>(i)] = 9;
    for (int i = 256; i <= 279; ++i) litlen_lengths[static_cast<size_t>(i)] = 7;
    for (int i = 280; i <= 287; ++i) litlen_lengths[static_cast<size_t>(i)] = 8;
  }
};

const FixedTables& Fixed() {
  static const FixedTables tables;
  return tables;
}

// Code-length-alphabet RLE item (RFC 1951 §3.2.7).
struct ClSymbol {
  std::uint8_t symbol;      // 0..18
  std::uint8_t extra_bits;  // number of extra bits
  std::uint8_t extra;       // extra bits payload
};

std::vector<ClSymbol> RunLengthEncodeLengths(
    std::span<const std::uint8_t> lengths) {
  std::vector<ClSymbol> out;
  size_t i = 0;
  while (i < lengths.size()) {
    const std::uint8_t len = lengths[i];
    size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == len) ++run;
    if (len == 0) {
      size_t left = run;
      while (left >= 11) {
        const size_t take = std::min<size_t>(left, 138);
        out.push_back({18, 7, static_cast<std::uint8_t>(take - 11)});
        left -= take;
      }
      while (left >= 3) {
        const size_t take = std::min<size_t>(left, 10);
        out.push_back({17, 3, static_cast<std::uint8_t>(take - 3)});
        left -= take;
      }
      while (left-- > 0) out.push_back({0, 0, 0});
    } else {
      out.push_back({len, 0, 0});
      size_t left = run - 1;
      while (left >= 3) {
        const size_t take = std::min<size_t>(left, 6);
        out.push_back({16, 2, static_cast<std::uint8_t>(take - 3)});
        left -= take;
      }
      while (left-- > 0) out.push_back({len, 0, 0});
    }
    i += run;
  }
  return out;
}

struct DynamicHeader {
  std::vector<std::uint8_t> litlen_lengths;  // size hlit
  std::vector<std::uint8_t> dist_lengths;    // size hdist
  std::vector<ClSymbol> cl_symbols;
  std::vector<std::uint8_t> cl_lengths;  // 19 entries
  int hclen = 4;
  std::int64_t header_bits = 0;
};

DynamicHeader BuildDynamicHeader(std::span<const std::uint64_t> litlen_freq,
                                 std::span<const std::uint64_t> dist_freq) {
  DynamicHeader h;
  auto litlen_lengths = BuildCodeLengths(litlen_freq);
  auto dist_lengths = BuildCodeLengths(dist_freq);
  // zlib convention: with no distances used, send one length-1 dist code so
  // the tree is unambiguous to strict decoders.
  if (std::all_of(dist_lengths.begin(), dist_lengths.end(),
                  [](std::uint8_t l) { return l == 0; })) {
    dist_lengths[0] = 1;
  }

  int hlit = kNumLitLenSymbols;
  while (hlit > 257 && litlen_lengths[static_cast<size_t>(hlit - 1)] == 0) {
    --hlit;
  }
  int hdist = kNumDistSymbols;
  while (hdist > 1 && dist_lengths[static_cast<size_t>(hdist - 1)] == 0) {
    --hdist;
  }
  h.litlen_lengths.assign(litlen_lengths.begin(), litlen_lengths.begin() + hlit);
  h.dist_lengths.assign(dist_lengths.begin(), dist_lengths.begin() + hdist);

  // One RLE stream covers litlen lengths immediately followed by dist
  // lengths, sharing runs across the boundary per the RFC.
  std::vector<std::uint8_t> all;
  all.reserve(h.litlen_lengths.size() + h.dist_lengths.size());
  all.insert(all.end(), h.litlen_lengths.begin(), h.litlen_lengths.end());
  all.insert(all.end(), h.dist_lengths.begin(), h.dist_lengths.end());
  h.cl_symbols = RunLengthEncodeLengths(all);

  std::array<std::uint64_t, 19> cl_freq{};
  for (const auto& s : h.cl_symbols) ++cl_freq[s.symbol];
  h.cl_lengths = BuildCodeLengths(cl_freq, 7);
  // Degenerate single-symbol CL alphabet still needs a decodable code.
  {
    int used = 0;
    for (const auto l : h.cl_lengths) used += (l != 0);
    if (used == 1) {
      for (size_t i = 0; i < h.cl_lengths.size(); ++i) {
        if (h.cl_lengths[i] == 0) {
          h.cl_lengths[i] = 1;
          break;
        }
      }
    }
  }

  h.hclen = 19;
  while (h.hclen > 4 &&
         h.cl_lengths[kCodeLengthOrder[static_cast<size_t>(h.hclen - 1)]] == 0) {
    --h.hclen;
  }

  h.header_bits = 5 + 5 + 4 + 3 * h.hclen;
  for (const auto& s : h.cl_symbols) {
    h.header_bits += h.cl_lengths[s.symbol] + s.extra_bits;
  }
  return h;
}

std::int64_t BodyCostBits(std::span<const std::uint64_t> litlen_freq,
                          std::span<const std::uint64_t> dist_freq,
                          std::span<const std::uint8_t> litlen_lengths,
                          std::span<const std::uint8_t> dist_lengths) {
  std::int64_t bits = 0;
  for (size_t s = 0; s < litlen_freq.size(); ++s) {
    if (litlen_freq[s] == 0) continue;
    bits += static_cast<std::int64_t>(litlen_freq[s]) *
            litlen_lengths[s];
    if (s > 256) {
      bits += static_cast<std::int64_t>(litlen_freq[s]) *
              kLengthExtra[s - 257];
    }
  }
  for (size_t s = 0; s < dist_freq.size(); ++s) {
    if (dist_freq[s] == 0) continue;
    bits += static_cast<std::int64_t>(dist_freq[s]) *
            (dist_lengths[s] + kDistExtra[s]);
  }
  return bits;
}

void EmitTokens(BitWriter& w, std::span<const Token> tokens,
                const HuffmanEncoder& litlen, const HuffmanEncoder& dist) {
  const auto& luts = Luts();
  for (const Token& t : tokens) {
    if (t.len == 0) {
      litlen.Write(w, t.dist);
      continue;
    }
    const int lcode = luts.length_code[t.len];
    litlen.Write(w, 257 + lcode);
    w.WriteBits(static_cast<std::uint32_t>(t.len - kLengthBase[lcode]),
                kLengthExtra[lcode]);
    const int dcode = luts.DistCode(t.dist);
    dist.Write(w, dcode);
    w.WriteBits(static_cast<std::uint32_t>(t.dist - kDistBase[dcode]),
                kDistExtra[dcode]);
  }
  litlen.Write(w, kEndOfBlock);
}

// Emits one DEFLATE block for `block_input` (already tokenized), choosing
// the cheapest of stored / fixed / dynamic.
void EmitBlock(BitWriter& w, Bytes& out, ByteSpan block_input,
               std::span<const Token> tokens, bool final_block) {
  const auto& luts = Luts();
  std::array<std::uint64_t, kNumLitLenSymbols> litlen_freq{};
  std::array<std::uint64_t, kNumDistSymbols> dist_freq{};
  litlen_freq[kEndOfBlock] = 1;
  for (const Token& t : tokens) {
    if (t.len == 0) {
      ++litlen_freq[t.dist];
    } else {
      ++litlen_freq[static_cast<size_t>(257 + luts.length_code[t.len])];
      ++dist_freq[static_cast<size_t>(luts.DistCode(t.dist))];
    }
  }

  const DynamicHeader dyn = BuildDynamicHeader(litlen_freq, dist_freq);
  // Cost of the dynamic body uses the (trimmed) dynamic lengths; symbols
  // beyond hlit/hdist have zero frequency by construction.
  std::vector<std::uint8_t> dyn_litlen(kNumLitLenSymbols, 0);
  std::copy(dyn.litlen_lengths.begin(), dyn.litlen_lengths.end(),
            dyn_litlen.begin());
  std::vector<std::uint8_t> dyn_dist(kNumDistSymbols, 0);
  std::copy(dyn.dist_lengths.begin(), dyn.dist_lengths.end(), dyn_dist.begin());

  const std::int64_t dynamic_bits =
      3 + dyn.header_bits +
      BodyCostBits(litlen_freq, dist_freq, dyn_litlen, dyn_dist);
  const std::int64_t fixed_bits =
      3 + BodyCostBits(litlen_freq, dist_freq, Fixed().litlen_lengths,
                       std::span<const std::uint8_t>(Fixed().dist_lengths)
                           .first(kNumDistSymbols));
  // Stored: 3 block bits, pad to byte, LEN/NLEN, raw payload.
  const std::int64_t stored_bits =
      3 + 7 + 32 + 8 * static_cast<std::int64_t>(block_input.size());

  if (stored_bits <= dynamic_bits && stored_bits <= fixed_bits &&
      block_input.size() <= 65535) {
    w.WriteBits(final_block ? 1u : 0u, 1);
    w.WriteBits(0u, 2);  // BTYPE=00 stored
    w.AlignToByte();
    AppendLE<std::uint16_t>(static_cast<std::uint16_t>(block_input.size()), out);
    AppendLE<std::uint16_t>(
        static_cast<std::uint16_t>(~block_input.size() & 0xFFFFu), out);
    out.insert(out.end(), block_input.begin(), block_input.end());
    return;
  }

  HuffmanEncoder litlen_enc;
  HuffmanEncoder dist_enc;
  if (fixed_bits <= dynamic_bits) {
    w.WriteBits(final_block ? 1u : 0u, 1);
    w.WriteBits(1u, 2);  // BTYPE=01 fixed
    litlen_enc.Init(Fixed().litlen_lengths);
    dist_enc.Init(Fixed().dist_lengths);
  } else {
    w.WriteBits(final_block ? 1u : 0u, 1);
    w.WriteBits(2u, 2);  // BTYPE=10 dynamic
    w.WriteBits(static_cast<std::uint32_t>(dyn.litlen_lengths.size() - 257), 5);
    w.WriteBits(static_cast<std::uint32_t>(dyn.dist_lengths.size() - 1), 5);
    w.WriteBits(static_cast<std::uint32_t>(dyn.hclen - 4), 4);
    for (int i = 0; i < dyn.hclen; ++i) {
      w.WriteBits(dyn.cl_lengths[kCodeLengthOrder[static_cast<size_t>(i)]], 3);
    }
    HuffmanEncoder cl_enc;
    cl_enc.Init(dyn.cl_lengths);
    for (const auto& s : dyn.cl_symbols) {
      cl_enc.Write(w, s.symbol);
      if (s.extra_bits > 0) {
        w.WriteBits(s.extra, s.extra_bits);
      }
    }
    litlen_enc.Init(dyn_litlen);
    dist_enc.Init(dyn_dist);
  }
  EmitTokens(w, tokens, litlen_enc, dist_enc);
}

}  // namespace

Bytes DeflateCompress(ByteSpan input, const DeflateOptions& options) {
  Bytes out;
  out.reserve(input.size() / 3 + 64);
  BitWriter w(out);
  if (input.empty()) {
    // Single empty fixed block.
    w.WriteBits(1u, 1);
    w.WriteBits(1u, 2);
    HuffmanEncoder litlen_enc;
    litlen_enc.Init(Fixed().litlen_lengths);
    litlen_enc.Write(w, kEndOfBlock);
    w.AlignToByte();
    return out;
  }

  const LevelParams params = ParamsForLevel(options.level);
  // Tokenize the whole input once (matches may then cross block
  // boundaries, which DEFLATE permits), then entropy-code in slabs so each
  // slab gets Huffman tables fitted to its local statistics.
  const std::vector<Token> tokens = Tokenize(input, params);

  constexpr size_t kBlockInputTarget = 128 * 1024;
  size_t tok_begin = 0;
  size_t input_pos = 0;
  while (tok_begin < tokens.size()) {
    size_t tok_end = tok_begin;
    size_t block_bytes = 0;
    while (tok_end < tokens.size() && block_bytes < kBlockInputTarget) {
      const Token& t = tokens[tok_end];
      block_bytes += (t.len == 0) ? 1 : t.len;
      ++tok_end;
    }
    const bool final_block = tok_end == tokens.size();
    EmitBlock(w, out, input.subspan(input_pos, block_bytes),
              std::span<const Token>(tokens).subspan(tok_begin,
                                                     tok_end - tok_begin),
              final_block);
    tok_begin = tok_end;
    input_pos += block_bytes;
  }
  w.AlignToByte();
  return out;
}

}  // namespace vizndp::compress
