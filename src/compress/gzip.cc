#include "compress/gzip.h"

#include "common/error.h"
#include "compress/checksum.h"

namespace vizndp::compress {

namespace {

constexpr Byte kMagic1 = 0x1F;
constexpr Byte kMagic2 = 0x8B;
constexpr Byte kMethodDeflate = 8;

// Header flag bits (RFC 1952).
constexpr Byte kFlagHcrc = 0x02;
constexpr Byte kFlagExtra = 0x04;
constexpr Byte kFlagName = 0x08;
constexpr Byte kFlagComment = 0x10;

}  // namespace

Bytes GzipCodec::Compress(ByteSpan input) const {
  Bytes out;
  out.reserve(input.size() / 3 + 32);
  out.push_back(kMagic1);
  out.push_back(kMagic2);
  out.push_back(kMethodDeflate);
  out.push_back(0);                    // FLG: no optional fields
  AppendLE<std::uint32_t>(0, out);     // MTIME: unset
  out.push_back(options_.level >= 8 ? 2 : (options_.level <= 2 ? 4 : 0));  // XFL
  out.push_back(255);                  // OS: unknown

  Bytes body = DeflateCompress(input, options_);
  out.insert(out.end(), body.begin(), body.end());

  AppendLE<std::uint32_t>(Crc32(input), out);
  AppendLE<std::uint32_t>(static_cast<std::uint32_t>(input.size()), out);
  return out;
}

Bytes GzipCodec::Decompress(ByteSpan input, size_t size_hint,
                            size_t max_output) const {
  // Minimum member: 10-byte header + nonempty deflate body + 8-byte trailer.
  if (input.size() < 19) {
    throw DecodeError("gzip member too short");
  }
  if (input[0] != kMagic1 || input[1] != kMagic2) {
    throw DecodeError("bad gzip magic");
  }
  if (input[2] != kMethodDeflate) {
    throw DecodeError("unsupported gzip compression method");
  }
  const Byte flags = input[3];
  size_t pos = 10;
  if (flags & kFlagExtra) {
    if (pos + 2 > input.size()) throw DecodeError("truncated gzip FEXTRA");
    const std::uint16_t xlen = LoadLE<std::uint16_t>(input.data() + pos);
    pos += 2 + xlen;
  }
  for (const Byte f : {kFlagName, kFlagComment}) {
    if (flags & f) {
      while (pos < input.size() && input[pos] != 0) ++pos;
      ++pos;  // NUL terminator
    }
  }
  if (flags & kFlagHcrc) pos += 2;
  if (pos >= input.size()) throw DecodeError("truncated gzip header");

  size_t body_consumed = 0;
  Bytes out =
      InflateRaw(input.subspan(pos), size_hint, &body_consumed, max_output);
  const size_t trailer = pos + body_consumed;
  if (trailer + 8 > input.size()) {
    throw DecodeError("truncated gzip trailer");
  }
  const std::uint32_t crc = LoadLE<std::uint32_t>(input.data() + trailer);
  const std::uint32_t isize = LoadLE<std::uint32_t>(input.data() + trailer + 4);
  if (crc != Crc32(out)) {
    throw DecodeError("gzip CRC mismatch");
  }
  if (isize != static_cast<std::uint32_t>(out.size())) {
    throw DecodeError("gzip ISIZE mismatch");
  }
  return out;
}

}  // namespace vizndp::compress
