#include "compress/zlib_stream.h"

#include "compress/checksum.h"

namespace vizndp::compress {

namespace {

// CMF: deflate method (8) with a 32 KiB window (7 << 4).
constexpr Byte kCmf = 0x78;

Byte FlgForLevel(int level) {
  // FLEVEL field (bits 6-7 of FLG) per RFC 1950.
  const int flevel = level <= 2 ? 0 : (level <= 5 ? 1 : (level <= 7 ? 2 : 3));
  Byte flg = static_cast<Byte>(flevel << 6);
  // FCHECK: make (CMF*256 + FLG) a multiple of 31.
  const int rem = (kCmf * 256 + flg) % 31;
  if (rem != 0) flg = static_cast<Byte>(flg + (31 - rem));
  return flg;
}

}  // namespace

Bytes ZlibCodec::Compress(ByteSpan input) const {
  Bytes out;
  out.reserve(input.size() / 3 + 16);
  out.push_back(kCmf);
  out.push_back(FlgForLevel(options_.level));
  const Bytes body = DeflateCompress(input, options_);
  out.insert(out.end(), body.begin(), body.end());
  // Adler-32 is stored big-endian (unlike gzip's little-endian CRC).
  const std::uint32_t adler = Adler32(input);
  out.push_back(static_cast<Byte>(adler >> 24));
  out.push_back(static_cast<Byte>(adler >> 16));
  out.push_back(static_cast<Byte>(adler >> 8));
  out.push_back(static_cast<Byte>(adler));
  return out;
}

Bytes ZlibCodec::Decompress(ByteSpan input, size_t size_hint,
                            size_t max_output) const {
  if (input.size() < 7) throw DecodeError("zlib stream too short");
  const Byte cmf = input[0];
  const Byte flg = input[1];
  if ((cmf & 0x0F) != 8) {
    throw DecodeError("zlib stream is not deflate");
  }
  if ((cmf * 256 + flg) % 31 != 0) {
    throw DecodeError("zlib header check failed");
  }
  if (flg & 0x20) {
    throw DecodeError("preset dictionaries are not supported");
  }
  size_t consumed = 0;
  Bytes out = InflateRaw(input.subspan(2), size_hint, &consumed, max_output);
  const size_t trailer = 2 + consumed;
  if (trailer + 4 > input.size()) {
    throw DecodeError("zlib trailer truncated");
  }
  const std::uint32_t adler =
      (static_cast<std::uint32_t>(input[trailer]) << 24) |
      (static_cast<std::uint32_t>(input[trailer + 1]) << 16) |
      (static_cast<std::uint32_t>(input[trailer + 2]) << 8) |
      static_cast<std::uint32_t>(input[trailer + 3]);
  if (adler != Adler32(out)) {
    throw DecodeError("zlib Adler-32 mismatch");
  }
  return out;
}

}  // namespace vizndp::compress
