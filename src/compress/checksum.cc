#include "compress/checksum.h"

#include <array>

namespace vizndp::compress {

namespace {

constexpr std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = MakeCrcTable();

}  // namespace

std::uint32_t Crc32(ByteSpan data, std::uint32_t crc) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (const Byte b : data) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t Adler32(ByteSpan data, std::uint32_t adler) {
  constexpr std::uint32_t kMod = 65521;
  std::uint32_t a = adler & 0xFFFFu;
  std::uint32_t b = (adler >> 16) & 0xFFFFu;
  size_t i = 0;
  while (i < data.size()) {
    // Largest run before a can overflow 32 bits is 5552 per RFC 1950.
    const size_t run = std::min<size_t>(5552, data.size() - i);
    for (size_t j = 0; j < run; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= kMod;
    b %= kMod;
    i += run;
  }
  return (b << 16) | a;
}

}  // namespace vizndp::compress
