#include "compress/checksum.h"

#include <array>
#include <bit>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define VIZNDP_CRC32_CLMUL 1
#endif

namespace vizndp::compress {

namespace {

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[k][i] is the CRC of byte i followed by k zero bytes, so eight
// table lookups advance the register eight input bytes at once. Same
// polynomial, bit-identical results — only the stride changes.
constexpr std::array<std::array<std::uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] =
          (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xFFu];
    }
  }
  return tables;
}

constexpr auto kCrcTables = MakeCrcTables();

// Table kernel without the pre/post complement: the building block both
// the public entry point and the PCLMUL tail reduction share.
inline std::uint32_t RawUpdate(std::uint32_t state, const Byte* p, size_t n) {
  for (; n > 0; --n) {
    state = kCrcTables[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

#ifdef VIZNDP_CRC32_CLMUL

// Carry-less-multiply fold constants. K(d) is a 64-bit polynomial whose
// 16-byte clmul image is CRC-state-equivalent to a qword placed d bytes
// before the fold point; the values were solved from the table kernel
// itself (GF(2) elimination over the 64 qword basis images), so folding
// with them is bit-identical to the table CRC by construction. The
// 64-byte-stride pair is K(80)/K(72) (low qword sits 80 bytes before the
// block it folds into, high qword 72), the 16-byte-stride pair K(32)/K(24).
constexpr long long kFold64Lo = 0x8f352d95;  // K(80)
constexpr long long kFold64Hi = 0x1d9513d7;  // K(72)
constexpr long long kFold16Lo = 0xae689191;  // K(32)
constexpr long long kFold16Hi = 0xccaa009e;  // K(24)

// Folds 64-byte blocks with PCLMULQDQ, then reduces the final 128-bit
// representative (plus any sub-16-byte tail) through the table kernel.
// Requires len >= 64. ~9x the slice-by-8 throughput; CRC stamping and
// verification of streamed chunk payloads is the hot caller.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t Crc32Clmul(
    const Byte* buf, size_t len, std::uint32_t crc) {
  const std::uint32_t c0 = crc ^ 0xFFFFFFFFu;
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 16));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 32));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 48));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(c0)));
  const __m128i k64 = _mm_set_epi64x(kFold64Hi, kFold64Lo);
  const __m128i k16 = _mm_set_epi64x(kFold16Hi, kFold16Lo);
  buf += 64;
  len -= 64;
  while (len >= 64) {
    const __m128i x5 = _mm_clmulepi64_si128(x1, k64, 0x00);
    const __m128i x6 = _mm_clmulepi64_si128(x2, k64, 0x00);
    const __m128i x7 = _mm_clmulepi64_si128(x3, k64, 0x00);
    const __m128i x8 = _mm_clmulepi64_si128(x4, k64, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k64, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k64, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k64, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k64, 0x11);
    x1 = _mm_xor_si128(
        _mm_xor_si128(x1, x5),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, x6),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 16)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, x7),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 32)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, x8),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 48)));
    buf += 64;
    len -= 64;
  }
  __m128i x5 = _mm_clmulepi64_si128(x1, k16, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k16, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x2);
  x5 = _mm_clmulepi64_si128(x1, k16, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k16, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x3);
  x5 = _mm_clmulepi64_si128(x1, k16, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k16, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x4);
  while (len >= 16) {
    x5 = _mm_clmulepi64_si128(x1, k16, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k16, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    buf += 16;
    len -= 16;
  }
  Byte rep[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(rep), x1);
  std::uint32_t state = RawUpdate(0, rep, 16);
  state = RawUpdate(state, buf, len);
  return state ^ 0xFFFFFFFFu;
}

bool HaveClmul() {
  static const bool have = __builtin_cpu_supports("pclmul") != 0 &&
                           __builtin_cpu_supports("sse4.1") != 0;
  return have;
}

#endif  // VIZNDP_CRC32_CLMUL

}  // namespace

std::uint32_t Crc32(ByteSpan data, std::uint32_t crc) {
#ifdef VIZNDP_CRC32_CLMUL
  if (data.size() >= 64 && HaveClmul()) {
    return Crc32Clmul(data.data(), data.size(), crc);
  }
#endif
  const auto& t = kCrcTables;
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const Byte* p = data.data();
  size_t n = data.size();
  // The word-at-a-time kernel folds the register into the low word of
  // each 8-byte load, which is only the CRC recurrence when loads are
  // little-endian; big-endian hosts take the bytewise tail below.
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; --n) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t Adler32(ByteSpan data, std::uint32_t adler) {
  constexpr std::uint32_t kMod = 65521;
  std::uint32_t a = adler & 0xFFFFu;
  std::uint32_t b = (adler >> 16) & 0xFFFFu;
  size_t i = 0;
  while (i < data.size()) {
    // Largest run before a can overflow 32 bits is 5552 per RFC 1950.
    const size_t run = std::min<size_t>(5552, data.size() - i);
    for (size_t j = 0; j < run; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= kMod;
    b %= kMod;
    i += run;
  }
  return (b << 16) | a;
}

}  // namespace vizndp::compress
