#include "compress/rle.h"

#include <algorithm>

#include "common/error.h"

namespace vizndp::compress {

namespace {
constexpr size_t kMinRun = 3;
constexpr size_t kMaxRun = 130;      // control 128..255 -> run 3..130
constexpr size_t kMaxLiteral = 128;  // control 0..127 -> literal 1..128
}  // namespace

Bytes RleCodec::Compress(ByteSpan input) const {
  Bytes out;
  out.reserve(input.size() / 4 + 16);
  size_t i = 0;
  size_t lit_start = 0;
  auto flush_literals = [&](size_t end) {
    size_t s = lit_start;
    while (s < end) {
      const size_t take = std::min(kMaxLiteral, end - s);
      out.push_back(static_cast<Byte>(take - 1));
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(s),
                 input.begin() + static_cast<std::ptrdiff_t>(s + take));
      s += take;
    }
  };
  while (i < input.size()) {
    size_t run = 1;
    while (i + run < input.size() && run < kMaxRun &&
           input[i + run] == input[i]) {
      ++run;
    }
    if (run >= kMinRun) {
      flush_literals(i);
      out.push_back(static_cast<Byte>(128 + (run - kMinRun)));
      out.push_back(input[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(input.size());
  return out;
}

Bytes RleCodec::Decompress(ByteSpan input, size_t size_hint,
                           size_t max_output) const {
  const size_t budget = ResolveOutputBudget(max_output);
  Bytes out;
  if (size_hint > 0) out.reserve(std::min(size_hint, budget));
  size_t pos = 0;
  while (pos < input.size()) {
    const Byte control = input[pos++];
    if (control < 128) {
      const size_t count = static_cast<size_t>(control) + 1;
      if (pos + count > input.size()) {
        throw DecodeError("rle literal run truncated");
      }
      if (count > budget - out.size()) {
        throw DecodeError("rle output exceeds budget");
      }
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
                 input.begin() + static_cast<std::ptrdiff_t>(pos + count));
      pos += count;
    } else {
      if (pos >= input.size()) throw DecodeError("rle repeat truncated");
      const size_t count = static_cast<size_t>(control) - 128 + kMinRun;
      if (count > budget - out.size()) {
        throw DecodeError("rle output exceeds budget");
      }
      out.insert(out.end(), count, input[pos++]);
    }
  }
  return out;
}

}  // namespace vizndp::compress
