// zlib stream format (RFC 1950) over our raw DEFLATE: 2-byte CMF/FLG
// header, deflate body, Adler-32 trailer. VTK's vtkZLibDataCompressor
// actually emits this format (not gzip members); having both lets VND
// files interoperate with either convention.
#pragma once

#include "compress/codec.h"
#include "compress/deflate.h"

namespace vizndp::compress {

class ZlibCodec final : public Codec {
 public:
  explicit ZlibCodec(int level = 6) : options_{level} {}

  std::string name() const override { return "zlib"; }
  Bytes Compress(ByteSpan input) const override;
  Bytes Decompress(ByteSpan input, size_t size_hint = 0,
                   size_t max_output = 0) const override;

 private:
  DeflateOptions options_;
};

}  // namespace vizndp::compress
