// LSB-first bit streams as DEFLATE (RFC 1951) defines them: bits are
// packed into bytes starting at the least-significant bit; Huffman codes
// are written most-significant-code-bit first, plain values LSB first.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/error.h"

namespace vizndp::compress {

class BitWriter {
 public:
  explicit BitWriter(Bytes& out) : out_(out) {}

  // Writes `count` bits of `value`, LSB first (DEFLATE's "value" order).
  void WriteBits(std::uint32_t value, int count) {
    acc_ |= static_cast<std::uint64_t>(value & ((1u << count) - 1u)) << nbits_;
    nbits_ += count;
    while (nbits_ >= 8) {
      out_.push_back(static_cast<Byte>(acc_ & 0xFFu));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  // Writes a Huffman code: bit-reversed so the MSB of the code goes first.
  void WriteCode(std::uint32_t code, int length) {
    std::uint32_t rev = 0;
    for (int i = 0; i < length; ++i) {
      rev = (rev << 1) | ((code >> i) & 1u);
    }
    WriteBits(rev, length);
  }

  // Pads with zero bits to the next byte boundary (stored-block alignment).
  void AlignToByte() {
    if (nbits_ > 0) {
      out_.push_back(static_cast<Byte>(acc_ & 0xFFu));
      acc_ = 0;
      nbits_ = 0;
    }
  }

 private:
  Bytes& out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  std::uint32_t ReadBits(int count) {
    while (nbits_ < count) {
      if (pos_ >= data_.size()) {
        throw DecodeError("bit stream truncated");
      }
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
      nbits_ += 8;
    }
    const std::uint32_t v =
        static_cast<std::uint32_t>(acc_ & ((1ull << count) - 1ull));
    acc_ >>= count;
    nbits_ -= count;
    return v;
  }

  // Reads one bit; used by canonical Huffman decoding.
  std::uint32_t ReadBit() { return ReadBits(1); }

  // Returns the next `count` bits without consuming them, zero-padded past
  // the end of input. Table-based Huffman decoding peeks a fixed window
  // and then consumes only the matched code's length, so the zero padding
  // is harmless: Consume() still rejects reads past the real end.
  std::uint32_t PeekBits(int count) {
    while (nbits_ < count && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
      nbits_ += 8;
    }
    return static_cast<std::uint32_t>(acc_ & ((1ull << count) - 1ull));
  }

  void Consume(int count) {
    if (count > nbits_) {
      throw DecodeError("bit stream truncated");
    }
    acc_ >>= count;
    nbits_ -= count;
  }

  void AlignToByte() {
    const int drop = nbits_ % 8;
    acc_ >>= drop;
    nbits_ -= drop;
  }

  // Byte-aligned raw read for stored blocks. Caller must AlignToByte first.
  void ReadAlignedBytes(MutableByteSpan dst) {
    VIZNDP_CHECK(nbits_ % 8 == 0);
    size_t i = 0;
    while (nbits_ > 0 && i < dst.size()) {
      dst[i++] = static_cast<Byte>(acc_ & 0xFFu);
      acc_ >>= 8;
      nbits_ -= 8;
    }
    if (dst.size() - i > data_.size() - pos_) {
      throw DecodeError("stored block truncated");
    }
    std::memcpy(dst.data() + i, data_.data() + pos_, dst.size() - i);
    pos_ += dst.size() - i;
  }

  // Number of whole bytes consumed so far (rounded up over buffered bits).
  size_t BytesConsumed() const { return pos_ - nbits_ / 8; }

  bool AtEnd() const { return pos_ >= data_.size() && nbits_ == 0; }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

}  // namespace vizndp::compress
