// LZ4 block format (https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md)
// implemented from scratch: token-per-sequence byte-oriented LZ77 with
// 16-bit offsets, the fast/low-ratio baseline the paper evaluates.
//
// The on-disk form used by this codec prefixes the raw LZ4 block with the
// 8-byte little-endian decompressed size, since the block format itself
// does not record it.
#pragma once

#include "compress/codec.h"

namespace vizndp::compress {

class Lz4Codec final : public Codec {
 public:
  // acceleration >= 1: larger values skip more aggressively over
  // incompressible regions (mirrors LZ4_compress_fast semantics).
  explicit Lz4Codec(int acceleration = 1) : acceleration_(acceleration) {}

  std::string name() const override { return "lz4"; }
  Bytes Compress(ByteSpan input) const override;
  Bytes Decompress(ByteSpan input, size_t size_hint = 0,
                   size_t max_output = 0) const override;

 private:
  int acceleration_;
};

// Raw block routines (no size prefix), exposed for tests. The decoder
// never produces more than `decompressed_size` bytes — a stream that
// tries is rejected mid-decode, so the size doubles as the allocation
// bound (the codec checks it against the output budget before calling).
Bytes Lz4CompressBlock(ByteSpan input, int acceleration = 1);
Bytes Lz4DecompressBlock(ByteSpan block, size_t decompressed_size);

}  // namespace vizndp::compress
