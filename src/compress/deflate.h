// Raw DEFLATE (RFC 1951) streams — the bare compressed format without any
// gzip/zlib framing. GzipCodec wraps these with the RFC 1952 member format.
#pragma once

#include "common/bytes.h"

namespace vizndp::compress {

// 1 (fastest, short hash chains) .. 9 (best ratio, long chains + lazy
// matching). Mirrors zlib's level semantics coarsely.
struct DeflateOptions {
  int level = 6;
};

// Produces a complete raw DEFLATE stream for `input`.
Bytes DeflateCompress(ByteSpan input, const DeflateOptions& options = {});

// Inflates a complete raw DEFLATE stream. `size_hint` (optional) reserves
// the output buffer. Throws DecodeError on malformed input. When
// `consumed` is non-null it receives the number of input bytes the stream
// occupied (gzip members need this to locate their trailer).
// `max_output` is a hard ceiling on the inflated size (0 = the codec
// default budget): a hostile stream that tries to inflate past it is
// rejected with DecodeError instead of exhausting memory.
Bytes InflateRaw(ByteSpan input, size_t size_hint = 0,
                 size_t* consumed = nullptr, size_t max_output = 0);

}  // namespace vizndp::compress
