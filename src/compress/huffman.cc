#include "compress/huffman.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace vizndp::compress {

namespace {

// Reverses the low `length` bits of `code`.
std::uint32_t ReverseBits(std::uint32_t code, int length) {
  std::uint32_t rev = 0;
  for (int i = 0; i < length; ++i) {
    rev = (rev << 1) | ((code >> i) & 1u);
  }
  return rev;
}

// One Huffman-tree build; returns per-symbol depths (0 for unused).
std::vector<int> TreeDepths(std::span<const std::uint64_t> freq) {
  struct Node {
    std::uint64_t weight;
    int index;  // < n: leaf symbol; >= n: internal node
  };
  const int n = static_cast<int>(freq.size());
  const auto cmp = [](const Node& a, const Node& b) {
    return a.weight > b.weight;
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
  for (int i = 0; i < n; ++i) {
    if (freq[static_cast<size_t>(i)] > 0) {
      heap.push({freq[static_cast<size_t>(i)], i});
    }
  }
  std::vector<int> parent;  // internal nodes only, indexed by index - n
  std::vector<std::pair<int, int>> children;
  if (heap.size() <= 1) {
    std::vector<int> depths(freq.size(), 0);
    if (!heap.empty()) depths[static_cast<size_t>(heap.top().index)] = 1;
    return depths;
  }
  int next = n;
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    children.emplace_back(a.index, b.index);
    heap.push({a.weight + b.weight, next++});
  }
  // Walk the tree from the root down, assigning depths.
  std::vector<int> depths(freq.size(), 0);
  std::vector<int> node_depth(children.size(), 0);
  for (int i = static_cast<int>(children.size()) - 1; i >= 0; --i) {
    const int d = node_depth[static_cast<size_t>(i)];
    for (const int child : {children[static_cast<size_t>(i)].first,
                            children[static_cast<size_t>(i)].second}) {
      if (child < n) {
        depths[static_cast<size_t>(child)] = d + 1;
      } else {
        node_depth[static_cast<size_t>(child - n)] = d + 1;
      }
    }
  }
  return depths;
}

}  // namespace

std::vector<std::uint8_t> BuildCodeLengths(
    std::span<const std::uint64_t> frequencies, int max_length) {
  std::vector<std::uint64_t> freq(frequencies.begin(), frequencies.end());
  for (;;) {
    const std::vector<int> depths = TreeDepths(freq);
    const int max_depth = depths.empty()
                              ? 0
                              : *std::max_element(depths.begin(), depths.end());
    if (max_depth <= max_length) {
      std::vector<std::uint8_t> lengths(depths.size());
      std::transform(depths.begin(), depths.end(), lengths.begin(),
                     [](int d) { return static_cast<std::uint8_t>(d); });
      return lengths;
    }
    // Damp the skew and retry: flattening the frequency distribution can
    // only shorten the deepest leaves.
    for (auto& f : freq) {
      if (f > 0) f = f / 2 + 1;
    }
  }
}

std::vector<std::uint16_t> AssignCanonicalCodes(
    std::span<const std::uint8_t> lengths) {
  std::array<int, kMaxCodeLength + 1> count{};
  for (const std::uint8_t len : lengths) {
    VIZNDP_CHECK(len <= kMaxCodeLength);
    ++count[len];
  }
  count[0] = 0;
  std::array<std::uint32_t, kMaxCodeLength + 2> next_code{};
  std::uint32_t code = 0;
  for (int bits = 1; bits <= kMaxCodeLength; ++bits) {
    code = (code + static_cast<std::uint32_t>(count[bits - 1])) << 1;
    next_code[bits] = code;
  }
  std::vector<std::uint16_t> codes(lengths.size(), 0);
  for (size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] != 0) {
      codes[i] = static_cast<std::uint16_t>(next_code[lengths[i]]++);
    }
  }
  return codes;
}

void HuffmanEncoder::Init(std::span<const std::uint8_t> lengths) {
  lengths_.assign(lengths.begin(), lengths.end());
  codes_ = AssignCanonicalCodes(lengths);
}

void HuffmanDecoder::Init(std::span<const std::uint8_t> lengths) {
  max_len_ = 0;
  std::uint64_t space = 0;  // Kraft sum scaled by 2^kMaxCodeLength.
  int used = 0;
  for (const std::uint8_t len : lengths) {
    if (len == 0) continue;
    if (len > kMaxCodeLength) {
      throw DecodeError("Huffman code length exceeds 15");
    }
    max_len_ = std::max(max_len_, static_cast<int>(len));
    space += 1ull << (kMaxCodeLength - len);
    ++used;
  }
  if (used == 0) {
    // Empty alphabet: any decode attempt will fail via the zero table.
    max_len_ = 1;
    table_.assign(2, 0);
    return;
  }
  constexpr std::uint64_t kFull = 1ull << kMaxCodeLength;
  if (used == 1) {
    // DEFLATE permits a single-symbol distance alphabet with length 1.
    if (space > kFull) throw DecodeError("over-subscribed Huffman code");
  } else if (space != kFull) {
    throw DecodeError(space > kFull ? "over-subscribed Huffman code"
                                    : "incomplete Huffman code");
  }

  const auto codes = AssignCanonicalCodes(lengths);
  table_.assign(1ull << max_len_, 0);
  for (size_t sym = 0; sym < lengths.size(); ++sym) {
    const int len = lengths[sym];
    if (len == 0) continue;
    // The stream delivers the code MSB-first, and PeekBits returns bits in
    // arrival order starting at bit 0 — so the table index begins with the
    // bit-reversed code, followed by every possible filler suffix.
    const std::uint32_t base = ReverseBits(codes[sym], len);
    const std::uint32_t entry =
        (static_cast<std::uint32_t>(sym) << 4) | static_cast<std::uint32_t>(len);
    for (std::uint32_t fill = 0; fill < (1u << (max_len_ - len)); ++fill) {
      table_[base | (fill << len)] = entry;
    }
  }
}

}  // namespace vizndp::compress
