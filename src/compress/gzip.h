// GZip member format (RFC 1952) over our raw DEFLATE implementation:
// 10-byte header, deflate body, CRC-32 + ISIZE trailer. This is the
// "GZip" baseline the paper evaluates (VTK's vtkZLibDataCompressor
// equivalent).
#pragma once

#include "compress/codec.h"
#include "compress/deflate.h"

namespace vizndp::compress {

class GzipCodec final : public Codec {
 public:
  explicit GzipCodec(int level = 6) : options_{level} {}

  std::string name() const override { return "gzip"; }
  Bytes Compress(ByteSpan input) const override;
  Bytes Decompress(ByteSpan input, size_t size_hint = 0,
                   size_t max_output = 0) const override;

 private:
  DeflateOptions options_;
};

}  // namespace vizndp::compress
