// Codec interface used by the file format, the object store, and the NDP
// pipeline. Mirrors VTK's pluggable data compressors: the paper evaluates
// GZip and LZ4, both reimplemented here from scratch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace vizndp::compress {

// Ceiling applied when a caller passes max_output = 0: decoders run on
// hostile input (a VND blob is whatever the store returned), so "no cap"
// really means "the largest output any legitimate array produces here".
inline constexpr size_t kDefaultDecompressBudget = size_t{1} << 30;  // 1 GiB

inline size_t ResolveOutputBudget(size_t max_output) {
  return max_output != 0 ? max_output : kDefaultDecompressBudget;
}

class Codec {
 public:
  virtual ~Codec() = default;

  // Stable identifier persisted in file headers ("none", "gzip", "lz4", "rle").
  virtual std::string name() const = 0;

  virtual Bytes Compress(ByteSpan input) const = 0;

  // `size_hint`, when nonzero, is the expected decompressed size; codecs
  // may use it to reserve output. `max_output` is a hard ceiling on the
  // decompressed size (0 = kDefaultDecompressBudget): input claiming or
  // producing more is rejected with DecodeError *before* the allocation,
  // so a hostile length field cannot OOM the process. Throws DecodeError
  // on corrupt input.
  virtual Bytes Decompress(ByteSpan input, size_t size_hint = 0,
                           size_t max_output = 0) const = 0;
};

using CodecPtr = std::shared_ptr<const Codec>;

// The identity codec ("none").
class NullCodec final : public Codec {
 public:
  std::string name() const override { return "none"; }
  Bytes Compress(ByteSpan input) const override {
    return Bytes(input.begin(), input.end());
  }
  Bytes Decompress(ByteSpan input, size_t,
                   size_t max_output = 0) const override {
    if (input.size() > ResolveOutputBudget(max_output)) {
      throw DecodeError("stored data exceeds output budget");
    }
    return Bytes(input.begin(), input.end());
  }
};

// Factory over registered codec names. Throws Error for unknown names.
CodecPtr MakeCodec(const std::string& name);

// Names accepted by MakeCodec, in registration order.
std::vector<std::string> RegisteredCodecNames();

}  // namespace vizndp::compress
