// Codec interface used by the file format, the object store, and the NDP
// pipeline. Mirrors VTK's pluggable data compressors: the paper evaluates
// GZip and LZ4, both reimplemented here from scratch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace vizndp::compress {

class Codec {
 public:
  virtual ~Codec() = default;

  // Stable identifier persisted in file headers ("none", "gzip", "lz4", "rle").
  virtual std::string name() const = 0;

  virtual Bytes Compress(ByteSpan input) const = 0;

  // `size_hint`, when nonzero, is the expected decompressed size; codecs
  // may use it to reserve output. Throws DecodeError on corrupt input.
  virtual Bytes Decompress(ByteSpan input, size_t size_hint = 0) const = 0;
};

using CodecPtr = std::shared_ptr<const Codec>;

// The identity codec ("none").
class NullCodec final : public Codec {
 public:
  std::string name() const override { return "none"; }
  Bytes Compress(ByteSpan input) const override {
    return Bytes(input.begin(), input.end());
  }
  Bytes Decompress(ByteSpan input, size_t) const override {
    return Bytes(input.begin(), input.end());
  }
};

// Factory over registered codec names. Throws Error for unknown names.
CodecPtr MakeCodec(const std::string& name);

// Names accepted by MakeCodec, in registration order.
std::vector<std::string> RegisteredCodecNames();

}  // namespace vizndp::compress
