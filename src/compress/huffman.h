// Canonical Huffman coding as DEFLATE uses it (RFC 1951 §3.2.2):
// codes are fully determined by their lengths, lengths are capped at 15,
// and shorter codes lexicographically precede longer ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitio.h"

namespace vizndp::compress {

inline constexpr int kMaxCodeLength = 15;

// Computes length-limited code lengths from symbol frequencies.
// Symbols with zero frequency get length 0 (no code). If the natural
// Huffman tree exceeds `max_length`, frequencies are damped and the tree
// rebuilt until it fits (the classic overflow fix; optimality loss is
// negligible for DEFLATE-sized alphabets).
std::vector<std::uint8_t> BuildCodeLengths(
    std::span<const std::uint64_t> frequencies, int max_length = kMaxCodeLength);

// Assigns canonical codes (RFC 1951 algorithm) for the given lengths.
// codes[sym] holds the code MSB-first in its low `lengths[sym]` bits.
std::vector<std::uint16_t> AssignCanonicalCodes(
    std::span<const std::uint8_t> lengths);

// Encoder half: code + length per symbol, written via BitWriter::WriteCode.
class HuffmanEncoder {
 public:
  void Init(std::span<const std::uint8_t> lengths);

  void Write(BitWriter& w, int symbol) const {
    w.WriteCode(codes_[static_cast<size_t>(symbol)],
                lengths_[static_cast<size_t>(symbol)]);
  }

  int Length(int symbol) const { return lengths_[static_cast<size_t>(symbol)]; }

 private:
  std::vector<std::uint16_t> codes_;
  std::vector<std::uint8_t> lengths_;
};

// Decoder half: a single-level lookup table over `max_len` peeked bits.
// Each entry packs (symbol << 4) | code_length.
class HuffmanDecoder {
 public:
  // Throws DecodeError when the lengths do not describe a valid prefix
  // code (over- or under-subscribed), except for the two degenerate cases
  // DEFLATE allows: an empty alphabet and a single-symbol alphabet.
  void Init(std::span<const std::uint8_t> lengths);

  int Decode(BitReader& r) const {
    const std::uint32_t window = r.PeekBits(max_len_);
    const std::uint32_t entry = table_[window];
    const int len = static_cast<int>(entry & 0xFu);
    if (len == 0) {
      throw DecodeError("invalid Huffman code in stream");
    }
    r.Consume(len);
    return static_cast<int>(entry >> 4);
  }

 private:
  int max_len_ = 0;
  std::vector<std::uint32_t> table_;
};

}  // namespace vizndp::compress
