// The classic (client-side, full-data) contour filter: VTK's
// vtkContourFilter analogue. Dispatches to marching squares on 2D grids
// and marching cubes on 3D grids, with multi-isovalue support.
#pragma once

#include <string>
#include <vector>

#include "contour/polydata.h"
#include "grid/dataset.h"

namespace vizndp::contour {

class ContourFilter {
 public:
  ContourFilter() = default;
  explicit ContourFilter(std::vector<double> isovalues)
      : isovalues_(std::move(isovalues)) {}

  void SetIsovalues(std::vector<double> isovalues) {
    isovalues_ = std::move(isovalues);
  }
  void AddIsovalue(double iso) { isovalues_.push_back(iso); }
  const std::vector<double>& isovalues() const { return isovalues_; }

  // Contours `array_name` from the dataset.
  PolyData Execute(const grid::Dataset& dataset,
                   const std::string& array_name) const;

  // Contours a standalone array over the given grid.
  PolyData Execute(const grid::Dims& dims,
                   const grid::UniformGeometry& geometry,
                   const grid::DataArray& array) const;

 private:
  std::vector<double> isovalues_;
};

}  // namespace vizndp::contour
