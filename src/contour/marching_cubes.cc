#include "contour/marching_cubes.h"

#include "common/error.h"
#include "contour/mc_core.h"

namespace vizndp::contour {

namespace {

template <typename T, typename Geo>
PolyData MarchingCubesT(const grid::Dims& dims, const Geo& geometry,
                        std::span<const T> values,
                        std::span<const double> isovalues) {
  VIZNDP_CHECK_MSG(static_cast<std::int64_t>(values.size()) ==
                       dims.PointCount(),
                   "field size does not match grid");
  VIZNDP_CHECK_MSG(dims.nx >= 2 && dims.ny >= 2 && dims.nz >= 2,
                   "marching cubes needs at least a 2x2x2 grid");
  PolyData out;
  detail::CellProcessor<T, Geo> processor(dims, geometry, values.data(), out);
  for (const double iso : isovalues) {
    processor.BeginIsovalue(iso);
    for (std::int64_t k = 0; k + 1 < dims.nz; ++k) {
      for (std::int64_t j = 0; j + 1 < dims.ny; ++j) {
        for (std::int64_t i = 0; i + 1 < dims.nx; ++i) {
          processor.ProcessCell(i, j, k);
        }
      }
    }
  }
  return out;
}

}  // namespace

PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::UniformGeometry& geometry,
                       std::span<const float> values,
                       std::span<const double> isovalues) {
  return MarchingCubesT<float>(dims, geometry, values, isovalues);
}

PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::RectilinearGeometry& geometry,
                       std::span<const float> values,
                       std::span<const double> isovalues) {
  geometry.Validate(dims);
  return MarchingCubesT<float>(dims, geometry, values, isovalues);
}

PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::RectilinearGeometry& geometry,
                       std::span<const double> values,
                       std::span<const double> isovalues) {
  geometry.Validate(dims);
  return MarchingCubesT<double>(dims, geometry, values, isovalues);
}

PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::RectilinearGeometry& geometry,
                       const grid::DataArray& array,
                       std::span<const double> isovalues) {
  switch (array.type()) {
    case grid::DataType::Float32:
      return MarchingCubes(dims, geometry, array.View<float>(), isovalues);
    case grid::DataType::Float64:
      return MarchingCubes(dims, geometry, array.View<double>(), isovalues);
    default:
      throw Error("contouring requires a floating-point array");
  }
}

PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::UniformGeometry& geometry,
                       std::span<const double> values,
                       std::span<const double> isovalues) {
  return MarchingCubesT<double>(dims, geometry, values, isovalues);
}

PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::UniformGeometry& geometry,
                       const grid::DataArray& array,
                       std::span<const double> isovalues) {
  switch (array.type()) {
    case grid::DataType::Float32:
      return MarchingCubes(dims, geometry, array.View<float>(), isovalues);
    case grid::DataType::Float64:
      return MarchingCubes(dims, geometry, array.View<double>(), isovalues);
    default:
      throw Error("contouring requires a floating-point array, got " +
                  std::string(grid::DataTypeName(array.type())));
  }
}

}  // namespace vizndp::contour
