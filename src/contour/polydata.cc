#include "contour/polydata.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>

#include "common/error.h"

namespace vizndp::contour {

double Vec3::Norm() const { return std::sqrt(x * x + y * y + z * z); }

double PolyData::SurfaceArea() const {
  double area = 0.0;
  for (const auto& t : triangles_) {
    const Vec3& a = points_[t[0]];
    const Vec3& b = points_[t[1]];
    const Vec3& c = points_[t[2]];
    area += 0.5 * (b - a).Cross(c - a).Norm();
  }
  return area;
}

double PolyData::TotalLineLength() const {
  double length = 0.0;
  for (const auto& l : lines_) {
    length += (points_[l[1]] - points_[l[0]]).Norm();
  }
  return length;
}

size_t PolyData::BoundaryEdgeCount() const {
  // Count edge uses keyed by unordered point pair. Degenerate triangles
  // (repeated indices) contribute no edges.
  std::map<std::pair<Index, Index>, int> uses;
  for (const auto& t : triangles_) {
    for (int e = 0; e < 3; ++e) {
      Index a = t[static_cast<size_t>(e)];
      Index b = t[static_cast<size_t>((e + 1) % 3)];
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      ++uses[{a, b}];
    }
  }
  size_t boundary = 0;
  for (const auto& [edge, count] : uses) {
    if (count == 1) ++boundary;
  }
  return boundary;
}

void PolyData::Append(const PolyData& other) {
  const Index base = static_cast<Index>(points_.size());
  points_.insert(points_.end(), other.points_.begin(), other.points_.end());
  for (const auto& l : other.lines_) {
    lines_.push_back({l[0] + base, l[1] + base});
  }
  for (const auto& t : other.triangles_) {
    triangles_.push_back({t[0] + base, t[1] + base, t[2] + base});
  }
}

bool PolyData::GeometricallyEquals(const PolyData& other,
                                   double tolerance) const {
  if (triangles_.size() != other.triangles_.size() ||
      lines_.size() != other.lines_.size()) {
    return false;
  }
  const auto close = [&](const Vec3& a, const Vec3& b) {
    return std::abs(a.x - b.x) <= tolerance &&
           std::abs(a.y - b.y) <= tolerance && std::abs(a.z - b.z) <= tolerance;
  };
  for (size_t i = 0; i < triangles_.size(); ++i) {
    for (int v = 0; v < 3; ++v) {
      if (!close(points_[triangles_[i][static_cast<size_t>(v)]],
                 other.points_[other.triangles_[i][static_cast<size_t>(v)]])) {
        return false;
      }
    }
  }
  for (size_t i = 0; i < lines_.size(); ++i) {
    for (int v = 0; v < 2; ++v) {
      if (!close(points_[lines_[i][static_cast<size_t>(v)]],
                 other.points_[other.lines_[i][static_cast<size_t>(v)]])) {
        return false;
      }
    }
  }
  return true;
}

void PolyData::WriteObj(const std::string& path) const {
  std::ofstream os(path);
  VIZNDP_CHECK_MSG(os.good(), "cannot open " + path);
  os << "# vizndp contour output\n";
  for (const Vec3& p : points_) {
    os << "v " << p.x << " " << p.y << " " << p.z << "\n";
  }
  for (const auto& t : triangles_) {
    os << "f " << t[0] + 1 << " " << t[1] + 1 << " " << t[2] + 1 << "\n";
  }
  for (const auto& l : lines_) {
    os << "l " << l[0] + 1 << " " << l[1] + 1 << "\n";
  }
  VIZNDP_CHECK_MSG(os.good(), "short write to " + path);
}

}  // namespace vizndp::contour
