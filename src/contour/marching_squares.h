// Marching squares: 2D contour lines over an (nx, ny, 1) uniform grid —
// the algorithm behind the paper's Fig. 3 example. Ambiguous saddle cases
// (5 and 10) are resolved with the cell-average decider, as VTK does.
#pragma once

#include <span>

#include "contour/polydata.h"
#include "grid/data_array.h"
#include "grid/dims.h"
#include "grid/rectilinear.h"

namespace vizndp::contour {

PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::UniformGeometry& geometry,
                         std::span<const float> values,
                         std::span<const double> isovalues);
PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::UniformGeometry& geometry,
                         std::span<const double> values,
                         std::span<const double> isovalues);

PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::UniformGeometry& geometry,
                         const grid::DataArray& array,
                         std::span<const double> isovalues);

// Rectilinear (stretched-grid) variants. The z coordinate array must
// hold exactly one entry (2D grids have nz == 1).
PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::RectilinearGeometry& geometry,
                         std::span<const float> values,
                         std::span<const double> isovalues);
PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::RectilinearGeometry& geometry,
                         const grid::DataArray& array,
                         std::span<const double> isovalues);

}  // namespace vizndp::contour
