#include "contour/marching_squares.h"

#include "common/error.h"
#include "contour/ms_core.h"

namespace vizndp::contour {

namespace {

template <typename T, typename Geo>
PolyData MarchingSquaresT(const grid::Dims& dims, const Geo& geometry,
                          std::span<const T> values,
                          std::span<const double> isovalues) {
  VIZNDP_CHECK_MSG(dims.Is2D(), "marching squares needs nz == 1");
  VIZNDP_CHECK_MSG(static_cast<std::int64_t>(values.size()) ==
                       dims.PointCount(),
                   "field size does not match grid");
  VIZNDP_CHECK_MSG(dims.nx >= 2 && dims.ny >= 2,
                   "marching squares needs at least a 2x2 grid");

  PolyData out;
  detail::SquareCellProcessor<T, Geo> processor(dims, geometry, values.data(),
                                                out);
  for (const double iso : isovalues) {
    processor.BeginIsovalue(iso);
    for (std::int64_t j = 0; j + 1 < dims.ny; ++j) {
      for (std::int64_t i = 0; i + 1 < dims.nx; ++i) {
        processor.ProcessCell(i, j);
      }
    }
  }
  return out;
}

}  // namespace

PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::UniformGeometry& geometry,
                         std::span<const float> values,
                         std::span<const double> isovalues) {
  return MarchingSquaresT<float>(dims, geometry, values, isovalues);
}

PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::RectilinearGeometry& geometry,
                         std::span<const float> values,
                         std::span<const double> isovalues) {
  geometry.Validate(dims);
  return MarchingSquaresT<float>(dims, geometry, values, isovalues);
}

PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::RectilinearGeometry& geometry,
                         const grid::DataArray& array,
                         std::span<const double> isovalues) {
  switch (array.type()) {
    case grid::DataType::Float32:
      return MarchingSquares(dims, geometry, array.View<float>(), isovalues);
    default:
      geometry.Validate(dims);
      return MarchingSquaresT<double>(dims, geometry, array.View<double>(),
                                      isovalues);
  }
}

PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::UniformGeometry& geometry,
                         std::span<const double> values,
                         std::span<const double> isovalues) {
  return MarchingSquaresT<double>(dims, geometry, values, isovalues);
}

PolyData MarchingSquares(const grid::Dims& dims,
                         const grid::UniformGeometry& geometry,
                         const grid::DataArray& array,
                         std::span<const double> isovalues) {
  switch (array.type()) {
    case grid::DataType::Float32:
      return MarchingSquares(dims, geometry, array.View<float>(), isovalues);
    case grid::DataType::Float64:
      return MarchingSquares(dims, geometry, array.View<double>(), isovalues);
    default:
      throw Error("contouring requires a floating-point array");
  }
}

}  // namespace vizndp::contour
