// Marching cubes over full (dense) scalar fields on uniform grids, with
// multi-isovalue support (all isovalues' geometry lands in one PolyData,
// as VTK's contour filter does).
#pragma once

#include <span>

#include "contour/polydata.h"
#include "grid/data_array.h"
#include "grid/dims.h"
#include "grid/rectilinear.h"

namespace vizndp::contour {

// Core typed entry points.
PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::UniformGeometry& geometry,
                       std::span<const float> values,
                       std::span<const double> isovalues);
PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::UniformGeometry& geometry,
                       std::span<const double> values,
                       std::span<const double> isovalues);

// Dispatches on the array's element type (Float32/Float64 only).
PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::UniformGeometry& geometry,
                       const grid::DataArray& array,
                       std::span<const double> isovalues);

// Rectilinear (stretched-grid) variants: identical topology, vertex
// positions interpolated between the per-axis coordinates.
PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::RectilinearGeometry& geometry,
                       std::span<const float> values,
                       std::span<const double> isovalues);
PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::RectilinearGeometry& geometry,
                       std::span<const double> values,
                       std::span<const double> isovalues);
PolyData MarchingCubes(const grid::Dims& dims,
                       const grid::RectilinearGeometry& geometry,
                       const grid::DataArray& array,
                       std::span<const double> isovalues);

}  // namespace vizndp::contour
