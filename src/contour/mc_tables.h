// Classic marching-cubes case tables (Lorensen & Cline, as tabulated by
// P. Bourke). Corner and edge numbering:
//
//        7--------6           +----6----+
//       /|       /|          /|        /|
//      4--------5 |         7 11      5 10
//      | |      | |        /  |      /  |
//      | 3------|-2       +----4----+   |
//      |/       |/        |   +---2-|---+
//      0--------1         8  /      9  /
//                          | 3       | 1
//  corner i bit i in the   |/        |/
//  case index; inside      +----0----+
//  (value >= iso) sets it.
//
// Corner coordinates (x,y,z): 0:(0,0,0) 1:(1,0,0) 2:(1,1,0) 3:(0,1,0)
//                             4:(0,0,1) 5:(1,0,1) 6:(1,1,1) 7:(0,1,1)
// Edge e connects kEdgeCorners[e][0] and [1].
#pragma once

#include <array>
#include <cstdint>

namespace vizndp::contour {

// Bit e set: edge e carries an isosurface vertex for this case.
extern const std::array<std::uint16_t, 256> kMcEdgeTable;

// Up to 5 triangles per case as edge-index triples, -1 terminated.
extern const std::array<std::array<std::int8_t, 16>, 256> kMcTriTable;

inline constexpr std::array<std::array<std::uint8_t, 2>, 12> kEdgeCorners = {{
    {0, 1}, {1, 2}, {2, 3}, {3, 0},
    {4, 5}, {5, 6}, {6, 7}, {7, 4},
    {0, 4}, {1, 5}, {2, 6}, {3, 7},
}};

// Corner offsets (dx, dy, dz) in cell-local coordinates.
inline constexpr std::array<std::array<std::uint8_t, 3>, 8> kCornerOffsets = {{
    {0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
    {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
}};

}  // namespace vizndp::contour
