#include "contour/components.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace vizndp::contour {

namespace {

// Union-find over point indices.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<Component> ConnectedComponents(const PolyData& poly) {
  const size_t n = poly.PointCount();
  if (n == 0) return {};
  DisjointSet sets(n);
  for (const auto& t : poly.triangles()) {
    sets.Union(t[0], t[1]);
    sets.Union(t[1], t[2]);
  }
  for (const auto& l : poly.lines()) {
    sets.Union(l[0], l[1]);
  }

  // Root -> dense component index (only for points referenced by a
  // primitive; isolated points do not form components).
  std::vector<bool> referenced(n, false);
  for (const auto& t : poly.triangles()) {
    for (const auto idx : t) referenced[idx] = true;
  }
  for (const auto& l : poly.lines()) {
    for (const auto idx : l) referenced[idx] = true;
  }

  std::vector<std::int64_t> component_of(n, -1);
  std::vector<Component> components;
  const auto component_index = [&](size_t point) {
    const size_t root = sets.Find(point);
    if (component_of[root] < 0) {
      component_of[root] = static_cast<std::int64_t>(components.size());
      Component c;
      constexpr double kInf = std::numeric_limits<double>::infinity();
      c.bbox_min = {kInf, kInf, kInf};
      c.bbox_max = {-kInf, -kInf, -kInf};
      components.push_back(c);
    }
    return static_cast<size_t>(component_of[root]);
  };

  for (size_t p = 0; p < n; ++p) {
    if (!referenced[p]) continue;
    Component& c = components[component_index(p)];
    ++c.points;
    const Vec3& pos = poly.points()[p];
    c.bbox_min = {std::min(c.bbox_min.x, pos.x), std::min(c.bbox_min.y, pos.y),
                  std::min(c.bbox_min.z, pos.z)};
    c.bbox_max = {std::max(c.bbox_max.x, pos.x), std::max(c.bbox_max.y, pos.y),
                  std::max(c.bbox_max.z, pos.z)};
  }
  for (const auto& t : poly.triangles()) {
    Component& c = components[component_index(t[0])];
    ++c.triangles;
    const Vec3& a = poly.points()[t[0]];
    const Vec3& b = poly.points()[t[1]];
    const Vec3& d = poly.points()[t[2]];
    c.area += 0.5 * (b - a).Cross(d - a).Norm();
  }
  for (const auto& l : poly.lines()) {
    Component& c = components[component_index(l[0])];
    ++c.lines;
    c.length += (poly.points()[l[1]] - poly.points()[l[0]]).Norm();
  }

  std::sort(components.begin(), components.end(),
            [](const Component& a, const Component& b) {
              return a.area + a.length > b.area + b.length;
            });
  return components;
}

}  // namespace vizndp::contour
