// Connected-component analysis over contour geometry: counts and
// measures the separate surfaces (3D) or curves (2D) in a PolyData.
// This is what turns the Nyx halo contour into a halo *count* (Fig. 12's
// "regions of candidate halos") and the impact movie into droplet
// statistics.
#pragma once

#include <vector>

#include "contour/polydata.h"

namespace vizndp::contour {

struct Component {
  size_t triangles = 0;
  size_t lines = 0;
  size_t points = 0;
  double area = 0.0;    // triangle area (3D)
  double length = 0.0;  // polyline length (2D)
  // Axis-aligned bounding box.
  Vec3 bbox_min;
  Vec3 bbox_max;
};

// Components are connected via shared point indices (the contour builders
// deduplicate edge vertices, so adjacent cells share points). Sorted by
// descending area (3D) / length (2D).
std::vector<Component> ConnectedComponents(const PolyData& poly);

}  // namespace vizndp::contour
