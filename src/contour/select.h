// Interesting-point selection — the data-reduction core of the paper's
// pre-filter. A grid edge is "interesting" for isovalue v when one
// endpoint is inside (value >= v) and the other outside; cells containing
// at least one interesting edge are "mixed".
//
// We select every corner of every mixed cell. This is a superset of
// "endpoints of interesting edges" (the paper's phrasing) by exactly the
// corners whose inside/outside bit the client-side marching-cubes case
// index still needs; selecting them makes the NDP contour *provably
// identical* to the full-data contour: a cell reconstructs iff all its
// corners arrived, and a cell with any missing corner is guaranteed
// non-mixed (mixed ⇒ all corners selected), so skipping it is exact.
#pragma once

#include <span>
#include <vector>

#include "grid/data_array.h"
#include "grid/dims.h"

namespace vizndp::contour {

struct Selection {
  grid::Dims dims;
  std::vector<grid::PointId> ids;  // sorted ascending, unique
  grid::DataArray values;          // values[i] is the field value at ids[i]
  std::int64_t total_points = 0;

  // Fraction of points selected, in [0, 1].
  double Selectivity() const {
    return total_points == 0
               ? 0.0
               : static_cast<double>(ids.size()) /
                     static_cast<double>(total_points);
  }

  // Paper's Fig. 6 unit: permillage (parts per thousand).
  double SelectivityPermille() const { return 1000.0 * Selectivity(); }

  // Bytes of payload (ids + values) before any wire encoding.
  std::uint64_t PayloadBytes() const {
    return ids.size() * sizeof(grid::PointId) +
           static_cast<std::uint64_t>(values.byte_size());
  }
};

// Works for 3D grids and 2D grids (nz == 1); multi-isovalue: a point is
// selected when it is interesting for *any* of the isovalues.
Selection SelectInterestingPoints(const grid::Dims& dims,
                                  const grid::DataArray& array,
                                  std::span<const double> isovalues);

// Count-only variant (no value materialization); used by selectivity
// sweeps such as the Fig. 6 reproduction.
std::int64_t CountInterestingPoints(const grid::Dims& dims,
                                    const grid::DataArray& array,
                                    std::span<const double> isovalues);

// Thread-parallel variant for multi-core storage nodes: the cell scan is
// partitioned into k-slabs (z-contiguous, so slab marks only overlap on
// one shared point plane, which is idempotent). Result is identical to
// the serial version. `threads` <= 1 or a 2D grid falls back to serial;
// 0 means hardware_concurrency().
Selection SelectInterestingPointsParallel(const grid::Dims& dims,
                                          const grid::DataArray& array,
                                          std::span<const double> isovalues,
                                          int threads = 0);

}  // namespace vizndp::contour
