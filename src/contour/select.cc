#include "contour/select.h"

#include <algorithm>
#include <thread>

#include "common/error.h"

namespace vizndp::contour {

namespace {

// Marks every corner of every mixed cell in `selected` (one byte per
// point). A cell is mixed for isovalue v iff cell_min < v <= cell_max
// under the inside(x) = x >= v convention.
// Marks cells in z-slab [k_begin, k_end) for 3D grids (full range for 2D).
template <typename T>
void MarkInterestingPoints(const grid::Dims& dims, std::span<const T> values,
                           std::span<const double> isovalues,
                           std::vector<std::uint8_t>& selected,
                           std::int64_t k_begin = 0,
                           std::int64_t k_end = -1) {
  // Single-isovalue loads are the common case on the NDP critical path;
  // hoist that comparison out of the per-cell dispatch.
  const bool single = isovalues.size() == 1;
  const double iso0 = isovalues.empty() ? 0.0 : isovalues.front();
  const auto mixed = [&](double lo, double hi) {
    if (single) return lo < iso0 && hi >= iso0;
    for (const double iso : isovalues) {
      if (lo < iso && hi >= iso) return true;
    }
    return false;
  };

  const std::int64_t nx = dims.nx;
  const std::int64_t ny = dims.ny;
  const std::int64_t nz = dims.nz;
  const T* const v = values.data();

  if (dims.Is2D()) {
    for (std::int64_t j = 0; j + 1 < ny; ++j) {
      const std::int64_t r0 = j * nx;
      const std::int64_t r1 = (j + 1) * nx;
      for (std::int64_t i = 0; i + 1 < nx; ++i) {
        const double c0 = v[r0 + i], c1 = v[r0 + i + 1];
        const double c2 = v[r1 + i], c3 = v[r1 + i + 1];
        const double lo = std::min(std::min(c0, c1), std::min(c2, c3));
        const double hi = std::max(std::max(c0, c1), std::max(c2, c3));
        if (mixed(lo, hi)) {
          selected[static_cast<size_t>(r0 + i)] = 1;
          selected[static_cast<size_t>(r0 + i + 1)] = 1;
          selected[static_cast<size_t>(r1 + i)] = 1;
          selected[static_cast<size_t>(r1 + i + 1)] = 1;
        }
      }
    }
    return;
  }

  // The pre-filter scan is on the NDP critical path (the paper's load
  // time includes it), so the inner loops are written to auto-vectorize:
  // first a column-wise min/max over the cell row's four x-rows, then a
  // shifted combine; only the rare mixed cells take the marking branch.
  std::vector<T> colmin(static_cast<size_t>(nx));
  std::vector<T> colmax(static_cast<size_t>(nx));
  if (k_end < 0) k_end = nz - 1;
  for (std::int64_t k = k_begin; k < k_end; ++k) {
    for (std::int64_t j = 0; j + 1 < ny; ++j) {
      const T* const r00 = v + (k * ny + j) * nx;
      const T* const r10 = v + (k * ny + j + 1) * nx;
      const T* const r01 = v + ((k + 1) * ny + j) * nx;
      const T* const r11 = v + ((k + 1) * ny + j + 1) * nx;
      for (std::int64_t i = 0; i < nx; ++i) {
        const T a = std::min(r00[i], r10[i]);
        const T b = std::min(r01[i], r11[i]);
        colmin[static_cast<size_t>(i)] = std::min(a, b);
        const T c = std::max(r00[i], r10[i]);
        const T d = std::max(r01[i], r11[i]);
        colmax[static_cast<size_t>(i)] = std::max(c, d);
      }
      const std::int64_t base = (k * ny + j) * nx;
      for (std::int64_t i = 0; i + 1 < nx; ++i) {
        const double lo = std::min(colmin[static_cast<size_t>(i)],
                                   colmin[static_cast<size_t>(i + 1)]);
        const double hi = std::max(colmax[static_cast<size_t>(i)],
                                   colmax[static_cast<size_t>(i + 1)]);
        if (mixed(lo, hi)) {
          selected[static_cast<size_t>(base + i)] = 1;
          selected[static_cast<size_t>(base + i + 1)] = 1;
          selected[static_cast<size_t>(base + nx + i)] = 1;
          selected[static_cast<size_t>(base + nx + i + 1)] = 1;
          const std::int64_t up = base + ny * nx;
          selected[static_cast<size_t>(up + i)] = 1;
          selected[static_cast<size_t>(up + i + 1)] = 1;
          selected[static_cast<size_t>(up + nx + i)] = 1;
          selected[static_cast<size_t>(up + nx + i + 1)] = 1;
        }
      }
    }
  }
}

template <typename T>
Selection GatherSelection(const grid::Dims& dims, const grid::DataArray& array,
                          std::span<const T> values,
                          const std::vector<std::uint8_t>& selected) {
  Selection out;
  out.dims = dims;
  out.total_points = dims.PointCount();
  std::int64_t count = 0;
  for (const std::uint8_t s : selected) count += s;
  out.ids.reserve(static_cast<size_t>(count));
  std::vector<T> picked;
  picked.reserve(static_cast<size_t>(count));
  for (std::int64_t id = 0; id < dims.PointCount(); ++id) {
    if (selected[static_cast<size_t>(id)]) {
      out.ids.push_back(id);
      picked.push_back(values[static_cast<size_t>(id)]);
    }
  }
  out.values = grid::DataArray::FromVector(array.name(), std::move(picked));
  return out;
}

template <typename T>
Selection BuildSelection(const grid::Dims& dims, const grid::DataArray& array,
                         std::span<const double> isovalues) {
  const auto values = array.View<T>();
  std::vector<std::uint8_t> selected(static_cast<size_t>(dims.PointCount()), 0);
  MarkInterestingPoints<T>(dims, values, isovalues, selected);
  return GatherSelection<T>(dims, array, values, selected);
}

// Two-phase slab scan: even-indexed slabs run concurrently, then odd ones.
// Adjacent slabs share one point plane; within a phase every slab's write
// range is disjoint, so no synchronization is needed.
template <typename T>
Selection BuildSelectionParallel(const grid::Dims& dims,
                                 const grid::DataArray& array,
                                 std::span<const double> isovalues,
                                 int threads) {
  const auto values = array.View<T>();
  std::vector<std::uint8_t> selected(static_cast<size_t>(dims.PointCount()), 0);
  const std::int64_t cells_z = dims.nz - 1;
  const std::int64_t slab =
      std::max<std::int64_t>(1, (cells_z + threads - 1) / threads);
  const std::int64_t slabs = (cells_z + slab - 1) / slab;
  for (const std::int64_t phase : {0LL, 1LL}) {
    std::vector<std::thread> workers;
    for (std::int64_t sidx = phase; sidx < slabs; sidx += 2) {
      const std::int64_t kb = sidx * slab;
      const std::int64_t ke = std::min(cells_z, kb + slab);
      workers.emplace_back([&, kb, ke] {
        MarkInterestingPoints<T>(dims, values, isovalues, selected, kb, ke);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  return GatherSelection<T>(dims, array, values, selected);
}

}  // namespace

Selection SelectInterestingPoints(const grid::Dims& dims,
                                  const grid::DataArray& array,
                                  std::span<const double> isovalues) {
  VIZNDP_CHECK_MSG(array.size() == dims.PointCount(),
                   "array size does not match grid");
  switch (array.type()) {
    case grid::DataType::Float32:
      return BuildSelection<float>(dims, array, isovalues);
    case grid::DataType::Float64:
      return BuildSelection<double>(dims, array, isovalues);
    default:
      throw Error("selection requires a floating-point array");
  }
}

std::int64_t CountInterestingPoints(const grid::Dims& dims,
                                    const grid::DataArray& array,
                                    std::span<const double> isovalues) {
  VIZNDP_CHECK_MSG(array.size() == dims.PointCount(),
                   "array size does not match grid");
  std::vector<std::uint8_t> selected(static_cast<size_t>(dims.PointCount()), 0);
  switch (array.type()) {
    case grid::DataType::Float32:
      MarkInterestingPoints<float>(dims, array.View<float>(), isovalues,
                                   selected);
      break;
    case grid::DataType::Float64:
      MarkInterestingPoints<double>(dims, array.View<double>(), isovalues,
                                    selected);
      break;
    default:
      throw Error("selection requires a floating-point array");
  }
  std::int64_t count = 0;
  for (const std::uint8_t s : selected) count += s;
  return count;
}

Selection SelectInterestingPointsParallel(const grid::Dims& dims,
                                          const grid::DataArray& array,
                                          std::span<const double> isovalues,
                                          int threads) {
  VIZNDP_CHECK_MSG(array.size() == dims.PointCount(),
                   "array size does not match grid");
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  // Each phase needs at least two slabs to be worth spawning threads.
  if (threads <= 1 || dims.Is2D() || dims.nz < 8) {
    return SelectInterestingPoints(dims, array, isovalues);
  }
  switch (array.type()) {
    case grid::DataType::Float32:
      return BuildSelectionParallel<float>(dims, array, isovalues, threads);
    case grid::DataType::Float64:
      return BuildSelectionParallel<double>(dims, array, isovalues, threads);
    default:
      throw Error("selection requires a floating-point array");
  }
}

}  // namespace vizndp::contour
