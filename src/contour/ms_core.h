// Internal marching-squares cell processor, shared by the dense filter
// (marching_squares.cc) and the NDP post-filter's 2D sparse path
// (sparse_field.cc) — mirroring mc_core.h so both paths emit identical
// geometry from identical inputs.
#pragma once

#include <unordered_map>

#include "contour/mc_core.h"  // detail::Inside
#include "contour/polydata.h"
#include "grid/dims.h"

namespace vizndp::contour::detail {

// Cell corners: 0:(0,0) 1:(1,0) 2:(1,1) 3:(0,1).
// Cell edges:   0: 0-1 (bottom), 1: 1-2 (right), 2: 2-3 (top), 3: 3-0 (left).
inline constexpr std::array<std::array<std::int8_t, 2>, 4> kSqEdgeCorners = {{
    {0, 1}, {1, 2}, {2, 3}, {3, 0}}};

// Segments per case as edge pairs, -1 terminated; saddle cases (5, 10)
// are resolved at run time with the cell-average decider.
inline constexpr std::array<std::array<std::int8_t, 5>, 16> kSqSegments = {{
    {-1, -1, -1, -1, -1},   // 0000
    {3, 0, -1, -1, -1},     // 0001: corner 0 inside
    {0, 1, -1, -1, -1},     // 0010
    {3, 1, -1, -1, -1},     // 0011
    {1, 2, -1, -1, -1},     // 0100
    {-1, -1, -1, -1, -1},   // 0101: saddle
    {0, 2, -1, -1, -1},     // 0110
    {3, 2, -1, -1, -1},     // 0111
    {2, 3, -1, -1, -1},     // 1000
    {2, 0, -1, -1, -1},     // 1001
    {-1, -1, -1, -1, -1},   // 1010: saddle
    {2, 1, -1, -1, -1},     // 1011
    {1, 3, -1, -1, -1},     // 1100
    {1, 0, -1, -1, -1},     // 1101: only corner 1 outside -> edges 0 and 1
    {0, 3, -1, -1, -1},     // 1110: only corner 0 outside -> edges 0 and 3
    {-1, -1, -1, -1, -1},   // 1111
}};

template <typename T, typename Geo = grid::UniformGeometry>
class SquareCellProcessor {
 public:
  SquareCellProcessor(const grid::Dims& dims, const Geo& geo, const T* values,
                      PolyData& out)
      : dims_(dims), geo_(geo), values_(values), out_(out) {}

  void BeginIsovalue(double iso) {
    iso_ = iso;
    edge_vertices_.clear();
  }

  void ProcessCell(std::int64_t i, std::int64_t j) {
    const grid::PointId corner_ids[4] = {
        dims_.Index(i, j), dims_.Index(i + 1, j), dims_.Index(i + 1, j + 1),
        dims_.Index(i, j + 1)};
    double corner_values[4];
    unsigned case_index = 0;
    for (int c = 0; c < 4; ++c) {
      corner_values[c] =
          static_cast<double>(values_[corner_ids[c]]);
      if (Inside(corner_values[c], iso_)) case_index |= 1u << c;
    }
    if (case_index == 0 || case_index == 15) return;

    const auto emit = [&](int ea, int eb) {
      out_.AddLine(VertexOnEdge(ea, corner_ids), VertexOnEdge(eb, corner_ids));
    };
    if (case_index == 5 || case_index == 10) {
      const double center = 0.25 * (corner_values[0] + corner_values[1] +
                                    corner_values[2] + corner_values[3]);
      const bool center_inside = Inside(center, iso_);
      if (case_index == 5) {  // corners 0 and 2 inside
        if (center_inside) {
          emit(3, 2);
          emit(1, 0);
        } else {
          emit(3, 0);
          emit(1, 2);
        }
      } else {  // corners 1 and 3 inside
        if (center_inside) {
          emit(0, 3);
          emit(2, 1);
        } else {
          emit(0, 1);
          emit(2, 3);
        }
      }
      return;
    }
    const auto& segs = kSqSegments[case_index];
    for (int s = 0; segs[static_cast<size_t>(s)] != -1; s += 2) {
      emit(segs[static_cast<size_t>(s)], segs[static_cast<size_t>(s + 1)]);
    }
  }

 private:
  PolyData::Index VertexOnEdge(int e, const grid::PointId* corner_ids) {
    grid::PointId pa = corner_ids[kSqEdgeCorners[static_cast<size_t>(e)][0]];
    grid::PointId pb = corner_ids[kSqEdgeCorners[static_cast<size_t>(e)][1]];
    if (pa > pb) std::swap(pa, pb);
    const int axis = (pb - pa == 1) ? 0 : 1;
    const std::int64_t key = pa * 2 + axis;
    const auto [it, inserted] = edge_vertices_.try_emplace(key, 0);
    if (!inserted) return it->second;
    const double va = static_cast<double>(values_[pa]);
    const double vb = static_cast<double>(values_[pb]);
    const double t = (iso_ - va) / (vb - va);
    const auto a_pos = geo_.PointPosition(dims_, pa);
    const auto b_pos = geo_.PointPosition(dims_, pb);
    it->second = out_.AddPoint({a_pos[0] + t * (b_pos[0] - a_pos[0]),
                                a_pos[1] + t * (b_pos[1] - a_pos[1]), 0.0});
    return it->second;
  }

  grid::Dims dims_;
  const Geo& geo_;  // caller keeps the geometry alive
  const T* values_;
  PolyData& out_;
  double iso_ = 0.0;
  std::unordered_map<std::int64_t, PolyData::Index> edge_vertices_;
};

}  // namespace vizndp::contour::detail
