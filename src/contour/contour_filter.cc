#include "contour/contour_filter.h"

#include "common/error.h"
#include "contour/marching_cubes.h"
#include "contour/marching_squares.h"

namespace vizndp::contour {

PolyData ContourFilter::Execute(const grid::Dataset& dataset,
                                const std::string& array_name) const {
  return Execute(dataset.dims(), dataset.geometry(),
                 dataset.GetArray(array_name));
}

PolyData ContourFilter::Execute(const grid::Dims& dims,
                                const grid::UniformGeometry& geometry,
                                const grid::DataArray& array) const {
  VIZNDP_CHECK_MSG(!isovalues_.empty(), "contour filter has no isovalues");
  if (dims.Is2D()) {
    return MarchingSquares(dims, geometry, array, isovalues_);
  }
  return MarchingCubes(dims, geometry, array, isovalues_);
}

}  // namespace vizndp::contour
