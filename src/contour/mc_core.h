// Internal marching-cubes cell processor, shared by the full-data filter
// (marching_cubes.cc) and the NDP post-filter's sparse reconstruction
// (sparse_field.cc). Both paths must produce bit-identical geometry, so
// all per-cell logic lives here exactly once.
#pragma once

#include <unordered_map>

#include "contour/mc_tables.h"
#include "contour/polydata.h"
#include "grid/dims.h"

namespace vizndp::contour::detail {

// Inside/outside convention used across the library (and by the
// pre-filter's edge classification): a point is inside iff value >= iso.
template <typename T>
bool Inside(T value, double iso) {
  return static_cast<double>(value) >= iso;
}

template <typename T, typename Geo = grid::UniformGeometry>
class CellProcessor {
 public:
  CellProcessor(const grid::Dims& dims, const Geo& geo, const T* values,
                PolyData& out)
      : dims_(dims), geo_(geo), values_(values), out_(out) {}

  // Call before each isovalue pass: edge-vertex identity is per isovalue.
  void BeginIsovalue(double iso) {
    iso_ = iso;
    edge_vertices_.clear();
  }

  // Emits triangles for the cell whose lowest corner is (i, j, k).
  void ProcessCell(std::int64_t i, std::int64_t j, std::int64_t k) {
    grid::PointId corner_ids[8];
    T corner_values[8];
    unsigned case_index = 0;
    for (int c = 0; c < 8; ++c) {
      const auto& off = kCornerOffsets[static_cast<size_t>(c)];
      const grid::PointId id = dims_.Index(i + off[0], j + off[1], k + off[2]);
      corner_ids[c] = id;
      corner_values[c] = values_[id];
      if (Inside(corner_values[c], iso_)) {
        case_index |= 1u << c;
      }
    }
    const std::uint16_t edge_mask = kMcEdgeTable[case_index];
    if (edge_mask == 0) return;

    PolyData::Index edge_point[12];
    for (int e = 0; e < 12; ++e) {
      if (edge_mask & (1u << e)) {
        edge_point[e] = VertexOnEdge(e, corner_ids, corner_values);
      }
    }
    const auto& tris = kMcTriTable[case_index];
    for (int t = 0; tris[static_cast<size_t>(t)] != -1; t += 3) {
      out_.AddTriangle(edge_point[tris[static_cast<size_t>(t)]],
                       edge_point[tris[static_cast<size_t>(t + 1)]],
                       edge_point[tris[static_cast<size_t>(t + 2)]]);
    }
  }

 private:
  PolyData::Index VertexOnEdge(int e, const grid::PointId* corner_ids,
                               const T* corner_values) {
    const int ca = kEdgeCorners[static_cast<size_t>(e)][0];
    const int cb = kEdgeCorners[static_cast<size_t>(e)][1];
    grid::PointId pa = corner_ids[ca];
    grid::PointId pb = corner_ids[cb];
    double va = static_cast<double>(corner_values[ca]);
    double vb = static_cast<double>(corner_values[cb]);
    if (pa > pb) {
      std::swap(pa, pb);
      std::swap(va, vb);
    }
    // Grid edges are axis-aligned; pb - pa is the stride of the axis.
    const std::int64_t stride = pb - pa;
    const int axis = stride == 1 ? 0 : (stride == dims_.nx ? 1 : 2);
    const std::int64_t key = pa * 3 + axis;

    const auto [it, inserted] = edge_vertices_.try_emplace(key, 0);
    if (!inserted) return it->second;

    // va != vb on a crossed edge (see Inside()), so t is well defined.
    const double t = (iso_ - va) / (vb - va);
    const auto a_pos = geo_.PointPosition(dims_, pa);
    const auto b_pos = geo_.PointPosition(dims_, pb);
    const Vec3 p{a_pos[0] + t * (b_pos[0] - a_pos[0]),
                 a_pos[1] + t * (b_pos[1] - a_pos[1]),
                 a_pos[2] + t * (b_pos[2] - a_pos[2])};
    it->second = out_.AddPoint(p);
    return it->second;
  }

  grid::Dims dims_;
  const Geo& geo_;  // caller keeps the geometry alive
  const T* values_;
  PolyData& out_;
  double iso_ = 0.0;
  // Edge key (canonical point id * 3 + axis) -> output point index.
  std::unordered_map<std::int64_t, PolyData::Index> edge_vertices_;
};

}  // namespace vizndp::contour::detail
