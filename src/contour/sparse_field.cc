#include "contour/sparse_field.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "contour/mc_core.h"
#include "contour/ms_core.h"

namespace vizndp::contour {

SparseField::SparseField(grid::Dims dims, grid::DataType type)
    : dims_(dims),
      type_(type),
      values_(static_cast<size_t>(dims.PointCount()) * grid::DataTypeSize(type)),
      valid_((static_cast<size_t>(dims.PointCount()) + 63) / 64, 0) {}

void SparseField::Scatter(std::span<const grid::PointId> ids,
                          const grid::DataArray& values) {
  VIZNDP_CHECK_MSG(values.type() == type_, "scatter value type mismatch");
  VIZNDP_CHECK_MSG(static_cast<std::int64_t>(ids.size()) == values.size(),
                   "ids/values length mismatch");
  const size_t elem = grid::DataTypeSize(type_);
  const ByteSpan raw = values.raw();
  scattered_ids_.reserve(scattered_ids_.size() + ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const grid::PointId id = ids[i];
    VIZNDP_CHECK_MSG(id >= 0 && id < dims_.PointCount(),
                     "scatter id out of range");
    // Scatter is on the NDP client's critical path; 4-byte elements (the
    // common case) take the direct-store fast path.
    if (elem == 4) {
      std::uint32_t word32;
      std::memcpy(&word32, raw.data() + i * 4, 4);
      std::memcpy(values_.data() + static_cast<size_t>(id) * 4, &word32, 4);
    } else {
      std::memcpy(values_.data() + static_cast<size_t>(id) * elem,
                  raw.data() + i * elem, elem);
    }
    auto& word = valid_[static_cast<size_t>(id >> 6)];
    const std::uint64_t bit = 1ull << (static_cast<size_t>(id) & 63);
    if ((word & bit) == 0) {
      word |= bit;
      ++valid_count_;
      scattered_ids_.push_back(id);
    }
  }
}

SparseField SparseField::FromSelection(const Selection& selection,
                                       grid::DataType type) {
  SparseField field(selection.dims, type);
  field.Scatter(selection.ids, selection.values);
  return field;
}

std::vector<std::int64_t> SparseField::CompleteCells() const {
  // Candidate cells are those touching at least one scattered point; of
  // these keep the ones with all corners valid. Cost is O(valid points),
  // not O(grid) — the client never scans the full volume.
  const bool flat = dims_.Is2D();
  const std::int64_t cx = dims_.nx - 1;
  const std::int64_t cy = dims_.ny - 1;
  const std::int64_t cz = flat ? 1 : dims_.nz - 1;
  VIZNDP_CHECK_MSG(cx > 0 && cy > 0 && cz > 0,
                   "sparse contour needs at least a 2x2 grid");

  std::vector<std::int64_t> candidates;
  candidates.reserve(scattered_ids_.size());
  for (const grid::PointId id : scattered_ids_) {
    const auto [i, j, k] = dims_.Coords(id);
    for (int dk = flat ? 0 : -1; dk <= 0; ++dk) {
      for (int dj = -1; dj <= 0; ++dj) {
        for (int di = -1; di <= 0; ++di) {
          const std::int64_t ci = i + di;
          const std::int64_t cj = j + dj;
          const std::int64_t ck = k + dk;
          if (ci < 0 || ci >= cx || cj < 0 || cj >= cy || ck < 0 || ck >= cz) {
            continue;
          }
          candidates.push_back(ci + cx * (cj + cy * ck));
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<std::int64_t> complete;
  complete.reserve(candidates.size());
  for (const std::int64_t cell : candidates) {
    const std::int64_t ci = cell % cx;
    const std::int64_t cj = (cell / cx) % cy;
    const std::int64_t ck = cell / (cx * cy);
    bool all_valid = true;
    if (flat) {
      const std::int64_t corners[4] = {
          dims_.Index(ci, cj), dims_.Index(ci + 1, cj),
          dims_.Index(ci + 1, cj + 1), dims_.Index(ci, cj + 1)};
      for (const std::int64_t corner : corners) {
        if (!IsValid(corner)) {
          all_valid = false;
          break;
        }
      }
    } else {
      for (const auto& off : kCornerOffsets) {
        if (!IsValid(dims_.Index(ci + off[0], cj + off[1], ck + off[2]))) {
          all_valid = false;
          break;
        }
      }
    }
    if (all_valid) complete.push_back(cell);
  }
  return complete;
}

template <typename T, typename Geo>
PolyData SparseField::ContourT(const Geo& geometry,
                               std::span<const double> isovalues) const {
  PolyData out;
  const T* values = reinterpret_cast<const T*>(values_.data());
  const std::vector<std::int64_t> cells = CompleteCells();
  const std::int64_t cx = dims_.nx - 1;
  const std::int64_t cy = dims_.ny - 1;
  if (dims_.Is2D()) {
    detail::SquareCellProcessor<T, Geo> processor(dims_, geometry, values, out);
    for (const double iso : isovalues) {
      processor.BeginIsovalue(iso);
      for (const std::int64_t cell : cells) {
        processor.ProcessCell(cell % cx, cell / cx);
      }
    }
    return out;
  }
  detail::CellProcessor<T, Geo> processor(dims_, geometry, values, out);
  for (const double iso : isovalues) {
    processor.BeginIsovalue(iso);
    for (const std::int64_t cell : cells) {
      processor.ProcessCell(cell % cx, (cell / cx) % cy, cell / (cx * cy));
    }
  }
  return out;
}

PolyData SparseField::Contour(const grid::UniformGeometry& geometry,
                              std::span<const double> isovalues) const {
  switch (type_) {
    case grid::DataType::Float32:
      return ContourT<float>(geometry, isovalues);
    case grid::DataType::Float64:
      return ContourT<double>(geometry, isovalues);
    default:
      throw Error("sparse contour requires a floating-point field");
  }
}

PolyData SparseField::Contour(const grid::RectilinearGeometry& geometry,
                              std::span<const double> isovalues) const {
  geometry.Validate(dims_);
  switch (type_) {
    case grid::DataType::Float32:
      return ContourT<float>(geometry, isovalues);
    case grid::DataType::Float64:
      return ContourT<double>(geometry, isovalues);
    default:
      throw Error("sparse contour requires a floating-point field");
  }
}

}  // namespace vizndp::contour
