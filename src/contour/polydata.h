// Output geometry of contour filters: points plus line segments (2D
// contours) or triangles (3D isosurfaces). The VTK analogue is
// vtkPolyData.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace vizndp::contour {

struct Vec3 {
  double x = 0, y = 0, z = 0;

  bool operator==(const Vec3&) const = default;

  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double Dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double Norm() const;
};

class PolyData {
 public:
  using Index = std::uint32_t;

  Index AddPoint(const Vec3& p) {
    points_.push_back(p);
    return static_cast<Index>(points_.size() - 1);
  }

  void AddLine(Index a, Index b) { lines_.push_back({a, b}); }
  void AddTriangle(Index a, Index b, Index c) { triangles_.push_back({a, b, c}); }

  const std::vector<Vec3>& points() const { return points_; }
  const std::vector<std::array<Index, 2>>& lines() const { return lines_; }
  const std::vector<std::array<Index, 3>>& triangles() const {
    return triangles_;
  }

  size_t PointCount() const { return points_.size(); }
  size_t LineCount() const { return lines_.size(); }
  size_t TriangleCount() const { return triangles_.size(); }

  // Total isosurface area (3D) and total contour length (2D).
  double SurfaceArea() const;
  double TotalLineLength() const;

  // Number of triangle edges referenced by exactly one triangle. Zero for
  // a watertight (closed) surface — the key marching-cubes sanity check.
  size_t BoundaryEdgeCount() const;

  // Appends another PolyData (points re-based).
  void Append(const PolyData& other);

  // True when both objects describe the same geometry up to point-index
  // renumbering within each primitive list order.
  bool GeometricallyEquals(const PolyData& other, double tolerance) const;

  // Writes Wavefront OBJ (triangles + polylines as 'l' records).
  void WriteObj(const std::string& path) const;

 private:
  std::vector<Vec3> points_;
  std::vector<std::array<Index, 2>> lines_;
  std::vector<std::array<Index, 3>> triangles_;
};

}  // namespace vizndp::contour
