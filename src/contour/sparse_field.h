// Client-side reconstruction for the NDP post-filter: scattered point
// values plus a validity mask, and a contour pass that visits only cells
// whose eight corners all arrived. By the selection invariant (see
// select.h) that set is exactly the mixed cells, so the result is
// identical to contouring the full field.
#pragma once

#include <span>
#include <vector>

#include "contour/polydata.h"
#include "contour/select.h"
#include "grid/data_array.h"
#include "grid/dims.h"
#include "grid/rectilinear.h"

namespace vizndp::contour {

class SparseField {
 public:
  SparseField(grid::Dims dims, grid::DataType type);

  // Scatters `values[i]` to point `ids[i]`. May be called repeatedly
  // (e.g. one batch per RPC chunk); ids must be in range and the value
  // type must match the field's.
  void Scatter(std::span<const grid::PointId> ids,
               const grid::DataArray& values);

  static SparseField FromSelection(const Selection& selection,
                                   grid::DataType type);

  bool IsValid(grid::PointId id) const {
    return (valid_[static_cast<size_t>(id >> 6)] >>
            (static_cast<size_t>(id) & 63)) & 1;
  }

  std::int64_t ValidCount() const { return valid_count_; }
  const grid::Dims& dims() const { return dims_; }
  grid::DataType type() const { return type_; }

  // Contours the sparse field: marching cubes on 3D grids, marching
  // squares on 2D (nz == 1) grids. Output is bit-identical to the dense
  // filter over the full field the selection was taken from.
  PolyData Contour(const grid::UniformGeometry& geometry,
                   std::span<const double> isovalues) const;

  // Stretched-grid variant: the selection is geometry-independent, so the
  // client may apply rectilinear coordinates it knows locally.
  PolyData Contour(const grid::RectilinearGeometry& geometry,
                   std::span<const double> isovalues) const;

 private:
  template <typename T, typename Geo>
  PolyData ContourT(const Geo& geometry,
                    std::span<const double> isovalues) const;

  // Cells all of whose corners are valid, in cell-scan (k, j, i) order.
  std::vector<std::int64_t> CompleteCells() const;

  grid::Dims dims_;
  grid::DataType type_;
  Bytes values_;                     // dense backing, holes undefined
  std::vector<std::uint64_t> valid_;
  std::vector<grid::PointId> scattered_ids_;  // all ids seen, unsorted
  std::int64_t valid_count_ = 0;
};

}  // namespace vizndp::contour
