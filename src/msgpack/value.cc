#include "msgpack/value.h"

#include <sstream>

namespace vizndp::msgpack {

std::int64_t Value::AsInt() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* u = std::get_if<std::uint64_t>(&v_)) {
    VIZNDP_CHECK_MSG(*u <= static_cast<std::uint64_t>(INT64_MAX),
                     "unsigned value too large for int64");
    return static_cast<std::int64_t>(*u);
  }
  throw Error("msgpack value is not an integer");
}

std::uint64_t Value::AsUint() const {
  if (const auto* u = std::get_if<std::uint64_t>(&v_)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    VIZNDP_CHECK_MSG(*i >= 0, "negative value is not unsigned");
    return static_cast<std::uint64_t>(*i);
  }
  throw Error("msgpack value is not an integer");
}

double Value::AsDouble() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  if (const auto* u = std::get_if<std::uint64_t>(&v_)) {
    return static_cast<double>(*u);
  }
  throw Error("msgpack value is not numeric");
}

bool Value::operator==(const Value& other) const {
  if (IsInteger() && other.IsInteger()) {
    const bool a_signed = Is<std::int64_t>();
    const bool b_signed = other.Is<std::int64_t>();
    if (a_signed == b_signed) return v_ == other.v_;
    const std::int64_t s = a_signed ? As<std::int64_t>() : other.As<std::int64_t>();
    const std::uint64_t u = a_signed ? other.As<std::uint64_t>() : As<std::uint64_t>();
    return s >= 0 && static_cast<std::uint64_t>(s) == u;
  }
  return v_ == other.v_;
}

const Value* Value::Find(const std::string& key) const {
  const Map& m = As<Map>();
  for (const auto& [k, v] : m) {
    if (k.Is<std::string>() && k.As<std::string>() == key) return &v;
  }
  return nullptr;
}

const Value& Value::At(const std::string& key) const {
  const Value* v = Find(key);
  VIZNDP_CHECK_MSG(v != nullptr, "msgpack map has no key '" + key + "'");
  return *v;
}

namespace {

struct Printer {
  std::ostringstream& os;

  void operator()(const Nil&) { os << "nil"; }
  void operator()(bool b) { os << (b ? "true" : "false"); }
  void operator()(std::int64_t i) { os << i; }
  void operator()(std::uint64_t u) { os << u << "u"; }
  void operator()(double d) { os << d; }
  void operator()(const std::string& s) { os << '"' << s << '"'; }
  void operator()(const Bytes& b) { os << "bin(" << b.size() << ")"; }
  void operator()(const Array& a) {
    os << "[";
    for (size_t i = 0; i < a.size(); ++i) {
      if (i > 0) os << ", ";
      os << a[i].ToString();
    }
    os << "]";
  }
  void operator()(const Map& m) {
    os << "{";
    for (size_t i = 0; i < m.size(); ++i) {
      if (i > 0) os << ", ";
      os << m[i].first.ToString() << ": " << m[i].second.ToString();
    }
    os << "}";
  }
  void operator()(const Ext& e) {
    os << "ext(" << static_cast<int>(e.type) << ", " << e.data.size() << ")";
  }
};

}  // namespace

std::string Value::ToString() const {
  std::ostringstream os;
  std::visit(Printer{os}, v_);
  return os.str();
}

}  // namespace vizndp::msgpack
