// MessagePack encoder. Two layers:
//  * Packer — streaming writer used by the RPC hot path (packs directly
//    into a growing buffer, picking the minimal wire format per value);
//  * Encode(Value) — convenience encoding of the dynamic value model.
// MessagePack is big-endian on the wire.
#pragma once

#include <bit>
#include <cstring>
#include <string_view>

#include "msgpack/value.h"

namespace vizndp::msgpack {

class Packer {
 public:
  explicit Packer(Bytes& out) : out_(out) {}

  void PackNil();
  void PackBool(bool b);
  void PackInt(std::int64_t i);
  void PackUint(std::uint64_t u);
  void PackFloat(float f);
  void PackDouble(double d);
  void PackStr(std::string_view s);
  void PackBin(ByteSpan data);
  void PackExt(std::int8_t type, ByteSpan data);

  // Container headers: callers then pack exactly `count` elements
  // (or key/value pairs for maps).
  void PackArrayHeader(std::uint32_t count);
  void PackMapHeader(std::uint32_t count);

  void PackValue(const Value& v);

 private:
  void PutByte(Byte b) { out_.push_back(b); }
  template <typename T>
  void PutBE(T v) {
    static_assert(std::is_integral_v<T>);
    for (int i = static_cast<int>(sizeof(T)) - 1; i >= 0; --i) {
      out_.push_back(static_cast<Byte>(
          static_cast<std::make_unsigned_t<T>>(v) >> (8 * i)));
    }
  }

  Bytes& out_;
};

// One-shot encoding of a Value tree.
Bytes Encode(const Value& v);

}  // namespace vizndp::msgpack
