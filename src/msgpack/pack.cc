#include "msgpack/pack.h"

namespace vizndp::msgpack {

void Packer::PackNil() { PutByte(0xC0); }

void Packer::PackBool(bool b) { PutByte(b ? 0xC3 : 0xC2); }

void Packer::PackUint(std::uint64_t u) {
  if (u <= 0x7F) {
    PutByte(static_cast<Byte>(u));
  } else if (u <= 0xFF) {
    PutByte(0xCC);
    PutByte(static_cast<Byte>(u));
  } else if (u <= 0xFFFF) {
    PutByte(0xCD);
    PutBE<std::uint16_t>(static_cast<std::uint16_t>(u));
  } else if (u <= 0xFFFFFFFFull) {
    PutByte(0xCE);
    PutBE<std::uint32_t>(static_cast<std::uint32_t>(u));
  } else {
    PutByte(0xCF);
    PutBE<std::uint64_t>(u);
  }
}

void Packer::PackInt(std::int64_t i) {
  if (i >= 0) {
    PackUint(static_cast<std::uint64_t>(i));
    return;
  }
  if (i >= -32) {
    PutByte(static_cast<Byte>(i));  // negative fixint
  } else if (i >= -128) {
    PutByte(0xD0);
    PutByte(static_cast<Byte>(i));
  } else if (i >= -32768) {
    PutByte(0xD1);
    PutBE<std::uint16_t>(static_cast<std::uint16_t>(i));
  } else if (i >= -2147483648LL) {
    PutByte(0xD2);
    PutBE<std::uint32_t>(static_cast<std::uint32_t>(i));
  } else {
    PutByte(0xD3);
    PutBE<std::uint64_t>(static_cast<std::uint64_t>(i));
  }
}

void Packer::PackFloat(float f) {
  PutByte(0xCA);
  PutBE<std::uint32_t>(std::bit_cast<std::uint32_t>(f));
}

void Packer::PackDouble(double d) {
  PutByte(0xCB);
  PutBE<std::uint64_t>(std::bit_cast<std::uint64_t>(d));
}

void Packer::PackStr(std::string_view s) {
  const size_t n = s.size();
  if (n <= 31) {
    PutByte(static_cast<Byte>(0xA0 | n));
  } else if (n <= 0xFF) {
    PutByte(0xD9);
    PutByte(static_cast<Byte>(n));
  } else if (n <= 0xFFFF) {
    PutByte(0xDA);
    PutBE<std::uint16_t>(static_cast<std::uint16_t>(n));
  } else {
    VIZNDP_CHECK(n <= 0xFFFFFFFFull);
    PutByte(0xDB);
    PutBE<std::uint32_t>(static_cast<std::uint32_t>(n));
  }
  const auto bytes = AsBytes(s);
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void Packer::PackBin(ByteSpan data) {
  const size_t n = data.size();
  if (n <= 0xFF) {
    PutByte(0xC4);
    PutByte(static_cast<Byte>(n));
  } else if (n <= 0xFFFF) {
    PutByte(0xC5);
    PutBE<std::uint16_t>(static_cast<std::uint16_t>(n));
  } else {
    VIZNDP_CHECK(n <= 0xFFFFFFFFull);
    PutByte(0xC6);
    PutBE<std::uint32_t>(static_cast<std::uint32_t>(n));
  }
  out_.insert(out_.end(), data.begin(), data.end());
}

void Packer::PackExt(std::int8_t type, ByteSpan data) {
  const size_t n = data.size();
  switch (n) {
    case 1: PutByte(0xD4); break;
    case 2: PutByte(0xD5); break;
    case 4: PutByte(0xD6); break;
    case 8: PutByte(0xD7); break;
    case 16: PutByte(0xD8); break;
    default:
      if (n <= 0xFF) {
        PutByte(0xC7);
        PutByte(static_cast<Byte>(n));
      } else if (n <= 0xFFFF) {
        PutByte(0xC8);
        PutBE<std::uint16_t>(static_cast<std::uint16_t>(n));
      } else {
        VIZNDP_CHECK(n <= 0xFFFFFFFFull);
        PutByte(0xC9);
        PutBE<std::uint32_t>(static_cast<std::uint32_t>(n));
      }
  }
  PutByte(static_cast<Byte>(type));
  out_.insert(out_.end(), data.begin(), data.end());
}

void Packer::PackArrayHeader(std::uint32_t count) {
  if (count <= 15) {
    PutByte(static_cast<Byte>(0x90 | count));
  } else if (count <= 0xFFFF) {
    PutByte(0xDC);
    PutBE<std::uint16_t>(static_cast<std::uint16_t>(count));
  } else {
    PutByte(0xDD);
    PutBE<std::uint32_t>(count);
  }
}

void Packer::PackMapHeader(std::uint32_t count) {
  if (count <= 15) {
    PutByte(static_cast<Byte>(0x80 | count));
  } else if (count <= 0xFFFF) {
    PutByte(0xDE);
    PutBE<std::uint16_t>(static_cast<std::uint16_t>(count));
  } else {
    PutByte(0xDF);
    PutBE<std::uint32_t>(count);
  }
}

namespace {

struct ValuePacker {
  Packer& p;

  void operator()(const Nil&) { p.PackNil(); }
  void operator()(bool b) { p.PackBool(b); }
  void operator()(std::int64_t i) { p.PackInt(i); }
  void operator()(std::uint64_t u) { p.PackUint(u); }
  void operator()(double d) { p.PackDouble(d); }
  void operator()(const std::string& s) { p.PackStr(s); }
  void operator()(const Bytes& b) { p.PackBin(b); }
  void operator()(const Array& a) {
    p.PackArrayHeader(static_cast<std::uint32_t>(a.size()));
    for (const Value& v : a) p.PackValue(v);
  }
  void operator()(const Map& m) {
    p.PackMapHeader(static_cast<std::uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      p.PackValue(k);
      p.PackValue(v);
    }
  }
  void operator()(const Ext& e) { p.PackExt(e.type, e.data); }
};

}  // namespace

void Packer::PackValue(const Value& v) {
  std::visit(ValuePacker{*this}, v.storage());
}

Bytes Encode(const Value& v) {
  Bytes out;
  Packer p(out);
  p.PackValue(v);
  return out;
}

}  // namespace vizndp::msgpack
