#include "msgpack/unpack.h"

#include <algorithm>
#include <bit>

namespace vizndp::msgpack {

namespace {

// RAII depth bump so every early throw unwinds the count correctly.
class DepthGuard {
 public:
  DepthGuard(int& depth, int max) : depth_(depth) {
    if (++depth_ > max) {
      throw DecodeError("msgpack nesting deeper than " + std::to_string(max));
    }
  }
  ~DepthGuard() { --depth_; }

 private:
  int& depth_;
};

}  // namespace

size_t Unpacker::CheckedContainerLength(size_t n, size_t min_bytes,
                                        const char* what) {
  // Every element needs at least `min_bytes` of input, so a length claim
  // larger than remaining/min_bytes can never be satisfied.
  if (min_bytes != 0 && n > Remaining() / min_bytes) {
    throw DecodeError("msgpack " + std::string(what) + " claims " +
                      std::to_string(n) + " elements but only " +
                      std::to_string(Remaining()) + " bytes remain");
  }
  return n;
}

Byte Unpacker::PeekByte() const {
  if (pos_ >= data_.size()) throw DecodeError("msgpack input truncated");
  return data_[pos_];
}

Byte Unpacker::TakeByte() {
  const Byte b = PeekByte();
  ++pos_;
  return b;
}

template <typename T>
T Unpacker::TakeBE() {
  if (pos_ + sizeof(T) > data_.size()) {
    throw DecodeError("msgpack input truncated");
  }
  std::make_unsigned_t<T> v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v = (v << 8) | data_[pos_ + i];
  }
  pos_ += sizeof(T);
  return static_cast<T>(v);
}

ByteSpan Unpacker::TakeBytes(size_t n) {
  // `n > Remaining()` (not `pos_ + n > size`) so a 4 GB str/bin length
  // claim can't wrap the addition; nothing is allocated either way.
  if (n > Remaining()) {
    throw DecodeError("msgpack payload claims " + std::to_string(n) +
                      " bytes but only " + std::to_string(Remaining()) +
                      " remain");
  }
  const ByteSpan s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::uint64_t Unpacker::NextUint() {
  const Value v = Next();
  return v.AsUint();
}

std::int64_t Unpacker::NextInt() {
  const Value v = Next();
  return v.AsInt();
}

double Unpacker::NextDouble() {
  const Value v = Next();
  return v.AsDouble();
}

bool Unpacker::NextBool() {
  const Value v = Next();
  return v.As<bool>();
}

std::string Unpacker::NextStr() {
  Value v = Next();
  return v.As<std::string>();
}

Bytes Unpacker::NextBin() {
  const ByteSpan view = NextBinView();
  return Bytes(view.begin(), view.end());
}

ByteSpan Unpacker::NextBinView() {
  const Byte tag = TakeByte();
  size_t n = 0;
  switch (tag) {
    case 0xC4: n = TakeByte(); break;
    case 0xC5: n = TakeBE<std::uint16_t>(); break;
    case 0xC6: n = TakeBE<std::uint32_t>(); break;
    default:
      throw DecodeError("expected msgpack bin, got tag " + std::to_string(tag));
  }
  return TakeBytes(n);
}

std::uint32_t Unpacker::NextArrayHeader() {
  const Byte tag = TakeByte();
  std::uint32_t n;
  if ((tag & 0xF0) == 0x90) n = tag & 0x0F;
  else if (tag == 0xDC) n = TakeBE<std::uint16_t>();
  else if (tag == 0xDD) n = TakeBE<std::uint32_t>();
  else throw DecodeError("expected msgpack array, got tag " +
                         std::to_string(tag));
  return static_cast<std::uint32_t>(CheckedContainerLength(n, 1, "array"));
}

std::uint32_t Unpacker::NextMapHeader() {
  const Byte tag = TakeByte();
  std::uint32_t n;
  if ((tag & 0xF0) == 0x80) n = tag & 0x0F;
  else if (tag == 0xDE) n = TakeBE<std::uint16_t>();
  else if (tag == 0xDF) n = TakeBE<std::uint32_t>();
  else throw DecodeError("expected msgpack map, got tag " +
                         std::to_string(tag));
  return static_cast<std::uint32_t>(CheckedContainerLength(n, 2, "map"));
}

Value Unpacker::Next() {
  const Byte tag = TakeByte();

  // Fix formats.
  if (tag <= 0x7F) return Value(static_cast<std::int64_t>(tag));
  if (tag >= 0xE0) return Value(static_cast<std::int64_t>(static_cast<std::int8_t>(tag)));
  if ((tag & 0xF0) == 0x80) {  // fixmap
    const DepthGuard guard(depth_, kMaxDepth);
    const size_t n = CheckedContainerLength(tag & 0x0F, 2, "map");
    Map m;
    m.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Value k = Next();
      Value v = Next();
      m.emplace_back(std::move(k), std::move(v));
    }
    return Value(std::move(m));
  }
  if ((tag & 0xF0) == 0x90) {  // fixarray
    const DepthGuard guard(depth_, kMaxDepth);
    const size_t n = CheckedContainerLength(tag & 0x0F, 1, "array");
    Array a;
    a.reserve(n);
    for (size_t i = 0; i < n; ++i) a.push_back(Next());
    return Value(std::move(a));
  }
  if ((tag & 0xE0) == 0xA0) {  // fixstr
    const ByteSpan s = TakeBytes(tag & 0x1F);
    return Value(std::string(AsStringView(s)));
  }

  switch (tag) {
    case 0xC0: return Value(Nil{});
    case 0xC1: throw DecodeError("msgpack tag 0xC1 is never used");
    case 0xC2: return Value(false);
    case 0xC3: return Value(true);
    case 0xC4: case 0xC5: case 0xC6: {
      size_t n;
      if (tag == 0xC4) n = TakeByte();
      else if (tag == 0xC5) n = TakeBE<std::uint16_t>();
      else n = TakeBE<std::uint32_t>();
      const ByteSpan s = TakeBytes(n);
      return Value(Bytes(s.begin(), s.end()));
    }
    case 0xC7: case 0xC8: case 0xC9: {
      size_t n;
      if (tag == 0xC7) n = TakeByte();
      else if (tag == 0xC8) n = TakeBE<std::uint16_t>();
      else n = TakeBE<std::uint32_t>();
      const auto type = static_cast<std::int8_t>(TakeByte());
      const ByteSpan s = TakeBytes(n);
      return Value(Ext{type, Bytes(s.begin(), s.end())});
    }
    case 0xCA:
      return Value(static_cast<double>(
          std::bit_cast<float>(TakeBE<std::uint32_t>())));
    case 0xCB:
      return Value(std::bit_cast<double>(TakeBE<std::uint64_t>()));
    case 0xCC: return Value(static_cast<std::uint64_t>(TakeByte()));
    case 0xCD: return Value(static_cast<std::uint64_t>(TakeBE<std::uint16_t>()));
    case 0xCE: return Value(static_cast<std::uint64_t>(TakeBE<std::uint32_t>()));
    case 0xCF: return Value(TakeBE<std::uint64_t>());
    case 0xD0: return Value(static_cast<std::int64_t>(static_cast<std::int8_t>(TakeByte())));
    case 0xD1: return Value(static_cast<std::int64_t>(static_cast<std::int16_t>(TakeBE<std::uint16_t>())));
    case 0xD2: return Value(static_cast<std::int64_t>(static_cast<std::int32_t>(TakeBE<std::uint32_t>())));
    case 0xD3: return Value(static_cast<std::int64_t>(TakeBE<std::uint64_t>()));
    case 0xD4: case 0xD5: case 0xD6: case 0xD7: case 0xD8: {
      const size_t n = size_t{1} << (tag - 0xD4);
      const auto type = static_cast<std::int8_t>(TakeByte());
      const ByteSpan s = TakeBytes(n);
      return Value(Ext{type, Bytes(s.begin(), s.end())});
    }
    case 0xD9: case 0xDA: case 0xDB: {
      size_t n;
      if (tag == 0xD9) n = TakeByte();
      else if (tag == 0xDA) n = TakeBE<std::uint16_t>();
      else n = TakeBE<std::uint32_t>();
      const ByteSpan s = TakeBytes(n);
      return Value(std::string(AsStringView(s)));
    }
    case 0xDC: case 0xDD: {
      const DepthGuard guard(depth_, kMaxDepth);
      const size_t raw = (tag == 0xDC) ? TakeBE<std::uint16_t>()
                                       : TakeBE<std::uint32_t>();
      const size_t n = CheckedContainerLength(raw, 1, "array");
      Array a;
      a.reserve(n);  // safe: n is bounded by the input size now
      for (size_t i = 0; i < n; ++i) a.push_back(Next());
      return Value(std::move(a));
    }
    case 0xDE: case 0xDF: {
      const DepthGuard guard(depth_, kMaxDepth);
      const size_t raw = (tag == 0xDE) ? TakeBE<std::uint16_t>()
                                       : TakeBE<std::uint32_t>();
      const size_t n = CheckedContainerLength(raw, 2, "map");
      Map m;
      m.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        Value k = Next();
        Value v = Next();
        m.emplace_back(std::move(k), std::move(v));
      }
      return Value(std::move(m));
    }
    default:
      throw DecodeError("unhandled msgpack tag " + std::to_string(tag));
  }
}

Value Decode(ByteSpan data) {
  Unpacker u(data);
  Value v = u.Next();
  if (!u.AtEnd()) {
    throw DecodeError("trailing bytes after msgpack value");
  }
  return v;
}

}  // namespace vizndp::msgpack
