// MessagePack decoder: streaming Unpacker plus one-shot Decode(Value).
// Throws DecodeError on malformed or truncated input.
#pragma once

#include <string_view>

#include "msgpack/value.h"

namespace vizndp::msgpack {

class Unpacker {
 public:
  explicit Unpacker(ByteSpan data) : data_(data) {}

  // Decodes the next complete value (recursively for containers).
  Value Next();

  // Typed helpers for protocol code that knows the expected shape; each
  // throws DecodeError when the next value has a different type.
  std::uint64_t NextUint();
  std::int64_t NextInt();
  double NextDouble();
  bool NextBool();
  std::string NextStr();
  Bytes NextBin();
  // Zero-copy view of the next bin payload (valid while the input lives).
  ByteSpan NextBinView();
  std::uint32_t NextArrayHeader();
  std::uint32_t NextMapHeader();

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

  // Nesting depth cap: deeper input is rejected as malformed rather than
  // recursing toward a stack overflow. Generous — real frames nest ~4.
  static constexpr int kMaxDepth = 64;

 private:
  Byte PeekByte() const;
  Byte TakeByte();
  template <typename T>
  T TakeBE();
  ByteSpan TakeBytes(size_t n);
  size_t Remaining() const { return data_.size() - pos_; }
  // Rejects a container whose declared element count cannot fit in the
  // remaining input (each element is at least `min_bytes` long). This is
  // the allocation guard: a crafted "4-billion-element" header is caught
  // here, before any reserve, instead of demanding gigabytes up front.
  size_t CheckedContainerLength(size_t n, size_t min_bytes, const char* what);

  ByteSpan data_;
  size_t pos_ = 0;
  int depth_ = 0;
};

// Decodes exactly one value; trailing bytes are an error.
Value Decode(ByteSpan data);

}  // namespace vizndp::msgpack
