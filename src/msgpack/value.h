// Dynamic value model for MessagePack (https://msgpack.org), the binary
// serialization format the paper's prototype uses (via rpclib) to marshal
// pre-filter results between storage and client nodes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace vizndp::msgpack {

class Value;

using Array = std::vector<Value>;
// Order-preserving map: msgpack map keys may be any value type.
using Map = std::vector<std::pair<Value, Value>>;

// Application-defined extension payload (msgpack ext family).
struct Ext {
  std::int8_t type = 0;
  Bytes data;
  bool operator==(const Ext&) const = default;
};

struct Nil {
  bool operator==(const Nil&) const = default;
};

class Value {
 public:
  using Storage = std::variant<Nil, bool, std::int64_t, std::uint64_t, double,
                               std::string, Bytes, Array, Map, Ext>;

  Value() : v_(Nil{}) {}
  Value(Nil) : v_(Nil{}) {}
  Value(bool b) : v_(b) {}
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(std::uint64_t u) : v_(u) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Bytes b) : v_(std::move(b)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Map m) : v_(std::move(m)) {}
  Value(Ext e) : v_(std::move(e)) {}

  template <typename T>
  bool Is() const { return std::holds_alternative<T>(v_); }

  bool IsNil() const { return Is<Nil>(); }
  // True for both signed and unsigned integer storage.
  bool IsInteger() const { return Is<std::int64_t>() || Is<std::uint64_t>(); }

  template <typename T>
  const T& As() const {
    const T* p = std::get_if<T>(&v_);
    VIZNDP_CHECK_MSG(p != nullptr, "msgpack value type mismatch");
    return *p;
  }

  template <typename T>
  T& AsMutable() {
    T* p = std::get_if<T>(&v_);
    VIZNDP_CHECK_MSG(p != nullptr, "msgpack value type mismatch");
    return *p;
  }

  // Integer access with signedness coercion; throws on range violation.
  std::int64_t AsInt() const;
  std::uint64_t AsUint() const;
  double AsDouble() const;  // accepts integers too

  const Storage& storage() const { return v_; }

  // Convenience map lookup by string key; throws when missing.
  const Value& At(const std::string& key) const;
  const Value* Find(const std::string& key) const;

  // Integers compare numerically across signed/unsigned storage: the wire
  // format stores non-negative values in unsigned formats, so a packed
  // int64_t(5) decodes as uint64_t(5) and must still compare equal.
  bool operator==(const Value& other) const;

  // Compact single-line rendering for diagnostics.
  std::string ToString() const;

 private:
  Storage v_;
};

}  // namespace vizndp::msgpack
