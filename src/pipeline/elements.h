// Concrete pipeline stages: the VND reader source (with the paper's data
// array selection), the contour filter stage, and simple sinks.
#pragma once

#include <optional>

#include "contour/contour_filter.h"
#include "io/vnd_format.h"
#include "pipeline/algorithm.h"
#include "storage/file_gateway.h"

namespace vizndp::pipeline {

// Source: reads a VND timestep object through a FileGateway (local or
// remote), optionally restricted to selected arrays.
class VndReaderSource final : public Algorithm {
 public:
  VndReaderSource(storage::FileGateway gateway, std::string key)
      : gateway_(std::move(gateway)), key_(std::move(key)) {}

  void SetKey(std::string key) {
    key_ = std::move(key);
    Modified();
  }
  const std::string& key() const { return key_; }

  // Empty selection (default) reads every array.
  void SetArraySelection(std::vector<std::string> names) {
    selection_ = std::move(names);
    Modified();
  }

  std::string Name() const override { return "VndReaderSource(" + key_ + ")"; }
  int InputPortCount() const override { return 0; }

 protected:
  DataObjectPtr Execute(const std::vector<DataObjectPtr>& inputs) override;

 private:
  storage::FileGateway gateway_;
  std::string key_;
  std::vector<std::string> selection_;
};

// Filter: dataset in, contour PolyData out.
class ContourStage final : public Algorithm {
 public:
  ContourStage(std::string array_name, std::vector<double> isovalues)
      : array_name_(std::move(array_name)), filter_(std::move(isovalues)) {}

  void SetIsovalues(std::vector<double> isovalues) {
    filter_.SetIsovalues(std::move(isovalues));
    Modified();
  }
  void SetArrayName(std::string name) {
    array_name_ = std::move(name);
    Modified();
  }

  std::string Name() const override { return "ContourStage(" + array_name_ + ")"; }
  int InputPortCount() const override { return 1; }

 protected:
  DataObjectPtr Execute(const std::vector<DataObjectPtr>& inputs) override;

 private:
  std::string array_name_;
  contour::ContourFilter filter_;
};

// Sink: writes incoming PolyData to a Wavefront OBJ file on Update().
class ObjWriterSink final : public Algorithm {
 public:
  explicit ObjWriterSink(std::string path) : path_(std::move(path)) {}

  std::string Name() const override { return "ObjWriterSink(" + path_ + ")"; }
  int InputPortCount() const override { return 1; }

 protected:
  DataObjectPtr Execute(const std::vector<DataObjectPtr>& inputs) override;

 private:
  std::string path_;
};

// Sink: records geometry statistics (counts, area) for programmatic use.
class PolyStatsSink final : public Algorithm {
 public:
  struct Stats {
    size_t points = 0;
    size_t triangles = 0;
    size_t lines = 0;
    double surface_area = 0.0;
  };

  std::string Name() const override { return "PolyStatsSink"; }
  int InputPortCount() const override { return 1; }

  // Valid after Update().
  const Stats& stats() const { return stats_; }

 protected:
  DataObjectPtr Execute(const std::vector<DataObjectPtr>& inputs) override;

 private:
  Stats stats_;
};

}  // namespace vizndp::pipeline
