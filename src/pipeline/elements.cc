#include "pipeline/elements.h"

namespace vizndp::pipeline {

DataObjectPtr VndReaderSource::Execute(const std::vector<DataObjectPtr>&) {
  io::VndReader reader(gateway_.Open(key_));
  grid::Dataset dataset =
      selection_.empty() ? reader.ReadAll() : reader.ReadSelected(selection_);
  return std::make_shared<DataObject>(std::move(dataset));
}

DataObjectPtr ContourStage::Execute(const std::vector<DataObjectPtr>& inputs) {
  const grid::Dataset& dataset = inputs.at(0)->AsDataset();
  return std::make_shared<DataObject>(filter_.Execute(dataset, array_name_));
}

DataObjectPtr ObjWriterSink::Execute(const std::vector<DataObjectPtr>& inputs) {
  const contour::PolyData& poly = inputs.at(0)->AsPolyData();
  poly.WriteObj(path_);
  return inputs.at(0);
}

DataObjectPtr PolyStatsSink::Execute(const std::vector<DataObjectPtr>& inputs) {
  const contour::PolyData& poly = inputs.at(0)->AsPolyData();
  stats_ = Stats{poly.PointCount(), poly.TriangleCount(), poly.LineCount(),
                 poly.SurfaceArea()};
  return inputs.at(0);
}

}  // namespace vizndp::pipeline
