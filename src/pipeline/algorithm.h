// VTK-style demand-driven pipeline: sources produce data objects, filters
// transform them, sinks consume them (Fig. 2 of the paper). Each
// algorithm tracks a modification time; Update() re-executes an algorithm
// only when it, or anything upstream, changed since its last execution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "contour/polydata.h"
#include "grid/dataset.h"

namespace vizndp::pipeline {

// The payload types that flow between pipeline stages.
class DataObject {
 public:
  DataObject() = default;
  DataObject(grid::Dataset dataset) : v_(std::move(dataset)) {}
  DataObject(contour::PolyData poly) : v_(std::move(poly)) {}

  bool IsDataset() const { return std::holds_alternative<grid::Dataset>(v_); }
  bool IsPolyData() const {
    return std::holds_alternative<contour::PolyData>(v_);
  }

  const grid::Dataset& AsDataset() const;
  const contour::PolyData& AsPolyData() const;

 private:
  std::variant<std::monostate, grid::Dataset, contour::PolyData> v_;
};

using DataObjectPtr = std::shared_ptr<const DataObject>;

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  // Connects `producer`'s output to this algorithm's input port. The
  // producer must outlive this algorithm.
  void SetInputConnection(int port, Algorithm* producer);

  // Brings the output up to date (recursively updating upstream) and
  // returns it.
  DataObjectPtr UpdateAndGetOutput();

  // Re-executes this algorithm if it or anything upstream is out of date.
  void Update();

  // Marks this algorithm dirty (call after changing a parameter).
  void Modified() { mtime_ = NextTimestamp(); }

  // Diagnostics / tests: how many times Execute() actually ran.
  std::uint64_t execution_count() const { return execution_count_; }

  virtual std::string Name() const = 0;
  virtual int InputPortCount() const = 0;

 protected:
  Algorithm() { Modified(); }

  // Runs the algorithm; inputs arrive in port order and are up to date.
  virtual DataObjectPtr Execute(
      const std::vector<DataObjectPtr>& inputs) = 0;

  static std::uint64_t NextTimestamp();

 private:
  std::vector<Algorithm*> inputs_;
  DataObjectPtr output_;
  std::uint64_t mtime_ = 0;        // last parameter change
  std::uint64_t output_time_ = 0;  // timestamp of last execution
  std::uint64_t execution_count_ = 0;
};

}  // namespace vizndp::pipeline
