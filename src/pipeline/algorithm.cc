#include "pipeline/algorithm.h"

#include <atomic>

#include "common/error.h"

namespace vizndp::pipeline {

const grid::Dataset& DataObject::AsDataset() const {
  const auto* d = std::get_if<grid::Dataset>(&v_);
  VIZNDP_CHECK_MSG(d != nullptr, "data object is not a Dataset");
  return *d;
}

const contour::PolyData& DataObject::AsPolyData() const {
  const auto* p = std::get_if<contour::PolyData>(&v_);
  VIZNDP_CHECK_MSG(p != nullptr, "data object is not PolyData");
  return *p;
}

std::uint64_t Algorithm::NextTimestamp() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

void Algorithm::SetInputConnection(int port, Algorithm* producer) {
  VIZNDP_CHECK_MSG(port >= 0 && port < InputPortCount(),
                   "input port out of range for " + Name());
  VIZNDP_CHECK(producer != nullptr);
  if (inputs_.size() < static_cast<size_t>(InputPortCount())) {
    inputs_.resize(static_cast<size_t>(InputPortCount()), nullptr);
  }
  inputs_[static_cast<size_t>(port)] = producer;
  Modified();
}

void Algorithm::Update() {
  VIZNDP_CHECK_MSG(static_cast<int>(inputs_.size()) == InputPortCount() ||
                       InputPortCount() == 0,
                   Name() + " has unconnected inputs");
  std::uint64_t newest_upstream = 0;
  std::vector<DataObjectPtr> inputs;
  inputs.reserve(inputs_.size());
  for (Algorithm* input : inputs_) {
    VIZNDP_CHECK_MSG(input != nullptr, Name() + " has an unconnected input");
    input->Update();
    newest_upstream = std::max(newest_upstream, input->output_time_);
    inputs.push_back(input->output_);
  }
  const bool dirty =
      output_ == nullptr || mtime_ > output_time_ || newest_upstream > output_time_;
  if (!dirty) return;
  output_ = Execute(inputs);
  ++execution_count_;
  output_time_ = NextTimestamp();
}

DataObjectPtr Algorithm::UpdateAndGetOutput() {
  Update();
  return output_;
}

}  // namespace vizndp::pipeline
